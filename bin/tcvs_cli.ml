(* tcvs — command-line front end for the Trusted CVS reproduction.

   Subcommands:
     tcvs simulate   run a protocol against an adversary over a
                     generated workload and report the outcome
     tcvs matrix     the full protocol x adversary detection matrix
     tcvs workload   print a generated workload schedule
     tcvs session    scripted two-user CVS session (commit/checkout/log)
     tcvs inspect    build a database and show Merkle tree / VO facts
     tcvs store-inspect  read-only dump of a durable store directory
     tcvs serve      the server as a TCP daemon over a durable store
     tcvs client     one protocol user, over TCP, against a daemon
     tcvs proxy      fault-injecting TCP proxy (drop/delay/dup/partition)
     tcvs route      cluster router: compose shard-daemon roots for clients
     tcvs serve-cluster  spawn N shard daemons plus the router, foreground
     tcvs bench-net  closed-loop throughput/latency against a daemon
     tcvs trace-join merge per-process span journals into one timeline
     tcvs stats      scrape a daemon's admin endpoint once
     tcvs top        refreshing terminal view of a daemon's admin endpoint

   Everything is deterministic given --seed (network timing aside). *)

open Cmdliner
open Tcvs
module S = Workload.Schedule

(* ---- shared argument definitions -------------------------------------- *)

let seed_arg =
  let doc = "PRNG seed; equal seeds give identical runs." in
  Arg.(value & opt string "tcvs-cli" & info [ "seed" ] ~docv:"SEED" ~doc)

let verbosity_conv =
  let parse s =
    match Log_setup.level_of_string s with
    | Ok lvl -> Ok lvl
    | Error other -> Error (`Msg (Printf.sprintf "unknown verbosity %S" other))
  in
  let print fmt lvl = Format.pp_print_string fmt (Logs.level_to_string lvl) in
  Arg.conv (parse, print)

let verbosity_arg =
  let doc = "Log verbosity: quiet, error, warn, info or debug." in
  let env = Cmd.Env.info "TCVS_LOG" ~doc:"Default log verbosity." in
  Arg.(
    value
    & opt verbosity_conv (Some Logs.Warning)
    & info [ "verbosity" ] ~docv:"LEVEL" ~doc ~env)

let metrics_arg =
  let doc =
    "Write the run's metrics registry as a JSON report to $(docv) after the run \
     ($(b,-) for stdout). Same seed, same report, byte for byte."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Record span-style trace events (message sends, sync sessions, transaction \
     issue/complete) and write them to $(docv) as JSON lines ($(b,-) for stdout, \
     which is also the default when no file is given)."
  in
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "trace" ] ~docv:"FILE" ~doc)

let write_lines path lines =
  match path with
  | "-" -> List.iter print_endline lines
  | path ->
      let oc = open_out path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      close_out oc

let users_arg =
  let doc = "Number of users." in
  Arg.(value & opt int 4 & info [ "users"; "n" ] ~docv:"N" ~doc)

let rounds_arg =
  let doc = "Length of the generated workload, in rounds." in
  Arg.(value & opt int 600 & info [ "rounds" ] ~docv:"ROUNDS" ~doc)

let k_arg =
  let doc = "Synchronisation period k (operations between syncs)." in
  Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc)

let epoch_arg =
  let doc = "Epoch length t for protocol 3 (rounds)." in
  Arg.(value & opt int 120 & info [ "epoch-len"; "t" ] ~docv:"ROUNDS" ~doc)

let protocol_conv k epoch_len =
  let parse s =
    match s with
    | "1" | "protocol-1" -> Ok (Harness.Protocol_1 { k })
    | "2" | "protocol-2" ->
        Ok (Harness.Protocol_2 { k; tag_mode = `Tagged; check_gctr = true; sync_trigger = `Per_user })
    | "2-untagged" ->
        Ok
          (Harness.Protocol_2
             { k; tag_mode = `Untagged; check_gctr = true; sync_trigger = `Per_user })
    | "2-global" ->
        Ok
          (Harness.Protocol_2
             { k; tag_mode = `Tagged; check_gctr = true; sync_trigger = `Global })
    | "3" | "protocol-3" -> Ok (Harness.Protocol_3 { epoch_len })
    | "4" | "protocol-4" -> Ok (Harness.Protocol_4 { announce_every = 4 })
    | "token" -> Ok (Harness.Token_baseline { slot_len = 4 })
    | "none" | "unverified" -> Ok Harness.Unverified
    | _ -> Error (`Msg (Printf.sprintf "unknown protocol %S" s))
  in
  parse

let protocol_arg =
  let doc =
    "Protocol: 1, 2, 2-untagged, 2-global, 3, 4, token, or none (the unverified baseline)."
  in
  Arg.(value & opt string "2" & info [ "protocol"; "p" ] ~docv:"PROTO" ~doc)

let adversary_arg =
  let doc =
    "Server behaviour: honest, tamper:N, drop:N, fork:N, rollback:N:DEPTH, \
     bitrot:N (N = operation index at which the attack fires; bitrot \
     silently corrupts stored bytes under stale digests and is only \
     caught with $(b,--sanitize)), crash:R, rollback-crash:R (R = round at \
     which the server crashes and restarts from its durable store; both \
     require $(b,--store); the rollback variant recovers from the stale \
     previous snapshot generation and must be detected), torn-manifest:R, \
     torn-manifest-hard:R (crash at round R tearing the MANIFEST mid-write; \
     the plain variant must repair from MANIFEST.bak and recover cleanly, \
     the hard variant wrecks the backup too and the server must halt \
     loudly rather than serve a half-initialized shard map), \
     checkpoint-crash:R (crash mid-checkpoint, next-generation snapshot \
     leftovers unpublished), compact-crash:R, compact-crash-late:R (crash \
     mid-compaction, before / after the atomic bases publish; all three \
     are honest crashes that must recover byte-identically)."
  in
  Arg.(value & opt string "honest" & info [ "adversary"; "a" ] ~docv:"ADV" ~doc)

let store_arg =
  let doc =
    "Run the server on a durable store (per-shard write-ahead logs + \
     checksummed snapshots) rooted at $(docv). Created on first use; on an \
     existing directory the database is recovered from disk and re-baselined. \
     Required by the crash adversaries."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let shards_arg =
  let doc =
    "Partition the server database into $(docv) key-range shards, each with \
     its own Merkle tree (and WAL file under $(b,--store)). The exchanged \
     root digest composes the sorted shard roots; verdicts are unchanged."
  in
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc)

let durability_conv =
  let parse s =
    match Store.durability_of_string s with
    | Ok d -> Ok d
    | Error m -> Error (`Msg m)
  in
  let print fmt d = Format.pp_print_string fmt (Store.durability_to_string d) in
  Arg.conv (parse, print)

let durability_arg =
  let doc =
    "WAL group-commit cadence under $(b,--store): $(b,per-op) (flush every \
     logged record — the default, and the mode recovery digests are pinned \
     in), $(b,per-round) (one group commit per simulation round / daemon \
     tick), or $(b,every:N) (flush once N records are staged)."
  in
  Arg.(value & opt durability_conv Store.Per_op & info [ "durability" ] ~docv:"MODE" ~doc)

let segment_bytes_arg =
  let doc =
    "Roll a WAL segment once it exceeds $(docv) bytes (default 1 MiB, min \
     256). Small values exercise rotation and compaction in short runs."
  in
  Arg.(value & opt (some int) None & info [ "segment-bytes" ] ~docv:"BYTES" ~doc)

let compact_after_arg =
  let doc =
    "Compact a stream's sealed WAL segments into its base snapshot once \
     $(docv) of them have accumulated (default 2)."
  in
  Arg.(value & opt (some int) None & info [ "compact-after" ] ~docv:"N" ~doc)

let sanitize_arg =
  let doc =
    "Enable runtime invariant sanitizers (Merkle re-hash, register-ledger and \
     epoch checks). Equivalent to setting TCVS_SANITIZE=1."
  in
  Arg.(value & flag & info [ "sanitize" ] ~doc)

let parse_adversary ~users s =
  let fail () = Error (`Msg (Printf.sprintf "cannot parse adversary %S" s)) in
  match String.split_on_char ':' s with
  | [ "honest" ] -> Ok Adversary.Honest
  | [ "tamper"; n ] -> (
      match int_of_string_opt n with
      | Some at_op -> Ok (Adversary.Tamper_value { at_op })
      | None -> fail ())
  | [ "drop"; n ] -> (
      match int_of_string_opt n with
      | Some at_op -> Ok (Adversary.Drop_update { at_op })
      | None -> fail ())
  | [ "fork"; n ] -> (
      match int_of_string_opt n with
      | Some at_op ->
          (* First half of the users keeps the true branch. *)
          Ok (Adversary.Fork { at_op; group_a = List.init (max 1 (users / 2)) Fun.id })
      | None -> fail ())
  | [ "rollback"; n; d ] -> (
      match (int_of_string_opt n, int_of_string_opt d) with
      | Some at_op, Some depth -> Ok (Adversary.Rollback { at_op; depth; repeat = 1 })
      | _ -> fail ())
  | [ "bitrot"; n ] -> (
      match int_of_string_opt n with
      | Some at_op -> Ok (Adversary.Bitrot { at_op })
      | None -> fail ())
  | [ "crash"; r ] -> (
      match int_of_string_opt r with
      | Some at_round -> Ok (Adversary.Crash { at_round })
      | None -> fail ())
  | [ "rollback-crash"; r ] -> (
      match int_of_string_opt r with
      | Some at_round -> Ok (Adversary.Rollback_crash { at_round })
      | None -> fail ())
  | [ "torn-manifest"; r ] -> (
      match int_of_string_opt r with
      | Some at_round -> Ok (Adversary.Torn_manifest { at_round; wreck = false })
      | None -> fail ())
  | [ "torn-manifest-hard"; r ] -> (
      match int_of_string_opt r with
      | Some at_round -> Ok (Adversary.Torn_manifest { at_round; wreck = true })
      | None -> fail ())
  | [ "checkpoint-crash"; r ] -> (
      match int_of_string_opt r with
      | Some at_round -> Ok (Adversary.Checkpoint_crash { at_round })
      | None -> fail ())
  | [ "compact-crash"; r ] -> (
      match int_of_string_opt r with
      | Some at_round -> Ok (Adversary.Compact_crash { at_round; published = false })
      | None -> fail ())
  | [ "compact-crash-late"; r ] -> (
      match int_of_string_opt r with
      | Some at_round -> Ok (Adversary.Compact_crash { at_round; published = true })
      | None -> fail ())
  | _ -> fail ()

let generated_workload ~users ~rounds ~seed =
  S.generate
    {
      S.default_profile with
      S.users;
      files = 24;
      mean_think = 4.0;
      offline_probability = 0.02;
      mean_offline = 30.0;
    }
    ~seed ~rounds

(* ---- simulate ----------------------------------------------------------- *)

let print_outcome protocol adversary (o : Harness.outcome) =
  Printf.printf "protocol      : %s\n" (Harness.protocol_name protocol);
  Printf.printf "adversary     : %s\n" (Adversary.name adversary);
  Printf.printf "transactions  : %d issued, %d completed\n" o.issued_transactions
    o.completed_transactions;
  Printf.printf "rounds        : %d\n" o.rounds_run;
  Printf.printf "messages      : %d (%d bytes), %d broadcast deliveries\n" o.messages_sent
    o.bytes_sent o.broadcasts_sent;
  Printf.printf "ground truth  : %s\n"
    (if o.oracle.Sim.Oracle.deviated then "run DEVIATES from every trusted run"
     else "run is consistent with a trusted run");
  (match o.alarms with
  | [] -> Printf.printf "detection     : none\n"
  | a :: _ ->
      Printf.printf "detection     : %s at round %d\n" (Sim.Id.to_string a.Sim.Engine.agent)
        a.Sim.Engine.at_round;
      Printf.printf "reason        : %s\n" a.Sim.Engine.reason;
      Printf.printf "ops after vio : %d\n" o.ops_after_violation);
  match Harness.classify o with
  | `True_alarm -> Printf.printf "classification: TRUE ALARM\n"
  | `False_alarm -> Printf.printf "classification: FALSE ALARM (bug!)\n"
  | `Missed -> Printf.printf "classification: MISSED VIOLATION\n"
  | `Clean -> Printf.printf "classification: clean run\n"

let simulate_cmd =
  let run seed users rounds k epoch_len protocol_str adversary_str sanitize verbosity
      metrics trace_file store_dir shards durability segment_bytes compact_after =
    Log_setup.install ~level:verbosity ();
    if sanitize then Sanitize.set_enabled true;
    match
      ( protocol_conv k epoch_len protocol_str,
        parse_adversary ~users adversary_str )
    with
    | Error (`Msg m), _ | _, Error (`Msg m) ->
        Printf.eprintf "error: %s\n" m;
        exit 2
    | Ok protocol, Ok adversary ->
        (* Arm tracing before the run; the flag survives the harness's
           registry reset. *)
        if trace_file <> None then Obs.set_tracing true;
        let events = generated_workload ~users ~rounds ~seed in
        let setup =
          {
            (Harness.default_setup ~protocol ~users ~adversary) with
            Harness.seed;
            store_dir;
            shards;
            store_durability = durability;
            store_segment_bytes = segment_bytes;
            store_compact_segments = compact_after;
          }
        in
        (match Harness.validate setup with
        | Ok () -> ()
        | Error e ->
            Printf.eprintf "error: %s\n" (Harness.setup_error_message e);
            exit 2);
        let outcome =
          try Harness.run setup ~events
          with Harness.Setup_error e ->
            Printf.eprintf "error: %s\n" (Harness.setup_error_message e);
            exit 2
        in
        (* Write the machine-readable artefacts before the human
           summary so a `--metrics -` report is not interleaved. *)
        (match trace_file with
        | Some path -> write_lines path (Obs.Report.trace_lines ())
        | None -> ());
        (match metrics with Some path -> Obs.Report.write path | None -> ());
        if metrics <> Some "-" && trace_file <> Some "-" then
          print_outcome protocol adversary outcome
  in
  let doc = "Run one protocol against one adversary over a generated workload." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const run $ seed_arg $ users_arg $ rounds_arg $ k_arg $ epoch_arg $ protocol_arg
      $ adversary_arg $ sanitize_arg $ verbosity_arg $ metrics_arg $ trace_arg
      $ store_arg $ shards_arg $ durability_arg $ segment_bytes_arg $ compact_after_arg)

(* ---- matrix -------------------------------------------------------------- *)

let matrix_cmd =
  let run seed users rounds k epoch_len verbosity =
    Log_setup.install ~level:verbosity ();
    let events = generated_workload ~users ~rounds ~seed in
    let protocols =
      [
        Harness.Unverified;
        Harness.Protocol_1 { k };
        Harness.Protocol_2 { k; tag_mode = `Tagged; check_gctr = true; sync_trigger = `Per_user };
        Harness.Protocol_3 { epoch_len };
        Harness.Protocol_4 { announce_every = 4 };
      ]
    in
    let adversaries =
      [
        Adversary.Honest;
        Adversary.Tamper_value { at_op = 10 };
        Adversary.Drop_update { at_op = 10 };
        Adversary.Fork { at_op = 10; group_a = List.init (max 1 (users / 2)) Fun.id };
        Adversary.Rollback { at_op = 12; depth = 4; repeat = 1 };
      ]
    in
    Printf.printf "%-24s %-22s %-10s %-28s\n" "protocol" "adversary" "oracle" "detection";
    List.iter
      (fun protocol ->
        List.iter
          (fun adversary ->
            let o =
              Harness.run (Harness.default_setup ~protocol ~users ~adversary) ~events
            in
            Printf.printf "%-24s %-22s %-10s %-28s\n" (Harness.protocol_name protocol)
              (Adversary.name adversary)
              (if o.oracle.Sim.Oracle.deviated then "deviates" else "-")
              (match o.alarms with
              | [] -> if adversary = Adversary.Honest then "clean" else "MISSED"
              | a :: _ -> Printf.sprintf "round %d (%d ops after)" a.Sim.Engine.at_round
                            o.ops_after_violation))
          adversaries;
        print_newline ())
      protocols
  in
  let doc = "Run the full protocol x adversary detection matrix." in
  Cmd.v
    (Cmd.info "matrix" ~doc)
    Term.(const run $ seed_arg $ users_arg $ rounds_arg $ k_arg $ epoch_arg $ verbosity_arg)

(* ---- workload -------------------------------------------------------------- *)

let workload_cmd =
  let run seed users rounds partitionable k =
    let events =
      if partitionable then
        S.partitionable
          {
            S.group_a = List.init (max 1 (users / 2)) Fun.id;
            group_b = List.init (users - (users / 2)) (fun i -> (users / 2) + i);
            shared_file = 7;
            k;
            private_files = 16;
          }
          ~seed
      else generated_workload ~users ~rounds ~seed
    in
    List.iter (fun ev -> Format.printf "%a@." S.pp_event ev) events;
    Printf.printf "# %d events\n" (List.length events)
  in
  let partitionable_arg =
    Arg.(value & flag & info [ "partitionable" ] ~doc:"Generate the Figure 1 workload shape.")
  in
  let doc = "Print a generated workload schedule." in
  Cmd.v
    (Cmd.info "workload" ~doc)
    Term.(const run $ seed_arg $ users_arg $ rounds_arg $ partitionable_arg $ k_arg)

(* ---- session ------------------------------------------------------------- *)

let session_cmd =
  let run k adversary_str verbosity =
    Log_setup.install ~level:verbosity ();
    match parse_adversary ~users:2 adversary_str with
    | Error (`Msg m) ->
        Printf.eprintf "error: %s\n" m;
        exit 2
    | Ok adversary ->
        let engine = Sim.Engine.create ~measure:Message.encoded_size () in
        let trace = Sim.Trace.create () in
        let server =
          Server.create
            { Server.mode = `Plain; epoch_len = None; branching = 8; adversary;
              history_cap = Server.default_history_cap }
            ~engine ~initial:[] ~initial_root_sig:None
        in
        let config =
          Protocol2.default_config ~n:2 ~k ~initial_root:(Server.initial_root server)
        in
        let session u =
          Cvs.session ~engine
            ~base:(Protocol2.base (Protocol2.create config ~user:u ~engine ~trace))
        in
        let alice = session 0 and bob = session 1 in
        let step name = function
          | Ok _ -> Printf.printf "ok   %s\n" name
          | Error e -> Printf.printf "FAIL %s: %s\n" name (Format.asprintf "%a" Cvs.pp_error e)
        in
        step "alice commits main.ml r1"
          (Result.map ignore (Cvs.commit alice ~path:"main.ml" ~content:"v1" ~log:"import"));
        step "bob checks out main.ml"
          (Result.map ignore (Cvs.checkout bob ~path:"main.ml"));
        step "bob commits main.ml r2"
          (Result.map ignore (Cvs.commit bob ~path:"main.ml" ~content:"v2" ~log:"edit"));
        step "alice reads the log" (Result.map ignore (Cvs.log alice ~path:"main.ml"));
        step "alice commits util.ml r1"
          (Result.map ignore (Cvs.commit alice ~path:"util.ml" ~content:"u1" ~log:"add"));
        step "bob lists files" (Result.map ignore (Cvs.list_files bob ~prefix:""));
        (match Sim.Engine.alarms engine with
        | [] -> Printf.printf "no alarms — %d messages exchanged\n" (Sim.Engine.messages_sent engine)
        | a :: _ ->
            Printf.printf "ALARM by %s: %s\n" (Sim.Id.to_string a.Sim.Engine.agent)
              a.Sim.Engine.reason)
  in
  let doc = "Run a scripted two-user CVS session over Protocol II." in
  Cmd.v (Cmd.info "session" ~doc) Term.(const run $ k_arg $ adversary_arg $ verbosity_arg)

(* ---- inspect -------------------------------------------------------------- *)

let inspect_cmd =
  let run items branching =
    let db =
      Mtree.Merkle_btree.of_alist ~branching
        (List.init items (fun i -> (Printf.sprintf "key%06d" i, Printf.sprintf "value-%d" i)))
    in
    Printf.printf "items        : %d\n" items;
    Printf.printf "branching    : %d\n" branching;
    Printf.printf "depth        : %d\n" (Mtree.Merkle_btree.depth db);
    Printf.printf "root digest  : %s\n"
      (Crypto.Hex.encode (Mtree.Merkle_btree.root_digest db));
    let key = Printf.sprintf "key%06d" (items / 2) in
    List.iter
      (fun (name, op) ->
        let vo = Mtree.Vo.generate db op in
        Printf.printf "VO for %-22s: %5d bytes, %3d pruned digests, %2d nodes\n" name
          (Mtree.Vo.size_bytes vo) (Mtree.Vo.stub_count vo) (Mtree.Vo.materialized_nodes vo))
      [
        ("point read", Mtree.Vo.Get key);
        ("update", Mtree.Vo.Set (key, "new"));
        ("delete", Mtree.Vo.Remove key);
        ("32-key range", Mtree.Vo.Range (key, Printf.sprintf "key%06d" ((items / 2) + 31)));
      ]
  in
  let items_arg =
    Arg.(value & opt int 4096 & info [ "items" ] ~docv:"N" ~doc:"Database size.")
  in
  let branching_arg =
    Arg.(value & opt int 16 & info [ "branching"; "m" ] ~docv:"M" ~doc:"B+-tree branching.")
  in
  let doc = "Build a database and print Merkle tree / verification-object facts." in
  Cmd.v (Cmd.info "inspect" ~doc) Term.(const run $ items_arg $ branching_arg)

(* ---- store-inspect -------------------------------------------------------- *)

let store_inspect_cmd =
  let run dir =
    match Store.inspect ~dir with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 1
    | Ok info ->
        Printf.printf "store         : %s\n" info.Store.info_dir;
        Printf.printf "manifest      : %s\n" info.Store.info_manifest;
        Printf.printf "shards        : %d (branching %d)\n" info.Store.info_shards
          info.Store.info_branching;
        Printf.printf "generation    : %d\n" info.Store.info_generation;
        Printf.printf "next-lsn      : %d\n" info.Store.info_next_lsn;
        let bad = ref 0 in
        List.iter
          (fun (s : Store.stream_info) ->
            Printf.printf
              "stream %-8s: base %s asof %d (%s)%s first-seg %d segments %d\n"
              s.Store.str_name s.Store.str_base_file s.Store.str_base_asof
              (if s.Store.str_base_ok then "ok" else "BAD")
              (if s.Store.str_compacted then " compacted" else "")
              s.Store.str_first_seg
              (List.length s.Store.str_segments);
            if not s.Store.str_base_ok then incr bad;
            List.iter
              (fun (g : Store.segment_info) ->
                Printf.printf
                  "  segment %s: %d records, lsn %d..%d, %d bytes, %s, %s\n"
                  g.Store.seg_file g.Store.seg_records g.Store.seg_lsn_lo
                  g.Store.seg_lsn_hi g.Store.seg_bytes
                  (if g.Store.seg_sealed then "sealed" else "active")
                  g.Store.seg_status;
                (* a torn tail is legal only on the active segment *)
                if g.Store.seg_status <> "ok"
                   && (g.Store.seg_sealed || g.Store.seg_status <> "torn tail")
                then incr bad)
              s.Store.str_segments)
          info.Store.info_streams;
        Printf.printf "live-segments : %d\n" info.Store.info_live_segments;
        (match info.Store.info_orphans with
        | [] -> Printf.printf "orphans       : none\n"
        | l ->
            Printf.printf "orphans       : %d (%s)\n" (List.length l)
              (String.concat ", " l));
        if !bad > 0 then begin
          Printf.printf "verdict       : %d damaged file(s)\n" !bad;
          exit 3
        end
        else Printf.printf "verdict       : ok\n"
  in
  let dir_arg =
    let doc = "Store directory to inspect." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let doc =
    "Inspect a durable store directory without touching it: manifest, \
     generation, per-stream base snapshots and WAL segments (record counts, \
     LSN ranges, checksum status), orphaned crash leftovers. Exits 3 when \
     any sealed segment or base snapshot is damaged."
  in
  Cmd.v (Cmd.info "store-inspect" ~doc) Term.(const run $ dir_arg)

(* ---- networking: serve / client / proxy / bench-net ---------------------- *)

let parse_hostport s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some port when port > 0 ->
          Ok ((if host = "" then "127.0.0.1" else host), port)
      | _ -> Error (Printf.sprintf "cannot parse %S as HOST:PORT" s))
  | None -> (
      match int_of_string_opt s with
      | Some port when port > 0 -> Ok ("127.0.0.1", port)
      | _ -> Error (Printf.sprintf "cannot parse %S as HOST:PORT" s))

let listen_arg =
  let doc = "Port to bind on 127.0.0.1 ($(b,0) picks an ephemeral port)." in
  Arg.(value & opt int 0 & info [ "listen" ] ~docv:"PORT" ~doc)

let port_file_arg =
  let doc = "Write the bound port to $(docv) (tmp+rename) once listening." in
  Arg.(value & opt (some string) None & info [ "port-file" ] ~docv:"FILE" ~doc)

let connect_arg =
  let doc = "Server address, as HOST:PORT or just PORT (host defaults to 127.0.0.1)." in
  Arg.(required & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT" ~doc)

let journal_arg =
  let doc =
    "Append per-operation span events to $(docv) as JSON lines; merge the \
     journals of a daemon, proxy and clients with $(b,tcvs trace-join)."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let serve_cmd =
  let run seed users k epoch_len protocol_str adversary_str sanitize verbosity listen
      port_file store_dir shards shard_id shard_count durability tail_ticks
      tick_timeout max_conns journal admin_port admin_port_file metrics =
    Log_setup.install ~level:verbosity ();
    if sanitize then Sanitize.set_enabled true;
    match (protocol_conv k epoch_len protocol_str, parse_adversary ~users adversary_str) with
    | Error (`Msg m), _ | _, Error (`Msg m) ->
        Printf.eprintf "error: %s\n" m;
        exit 2
    | Ok protocol, Ok adversary -> (
        (match adversary with
        | ( Adversary.Crash _ | Adversary.Rollback_crash _
          | Adversary.Torn_manifest _ | Adversary.Checkpoint_crash _
          | Adversary.Compact_crash _ )
          when store_dir = None ->
            Printf.eprintf "error: %s\n"
              (Harness.setup_error_message (Harness.Store_required adversary));
            exit 2
        | _ -> ());
        let cfg =
          {
            Net.Daemon.default_config with
            Net.Daemon.listen_port = listen;
            port_file;
            store_dir;
            shards = Option.value ~default:1 shards;
            protocol;
            users;
            seed;
            adversary;
            max_conns;
            tick_timeout;
            tail_ticks;
            durability;
            journal;
            admin_port;
            admin_port_file;
            shard_id;
            shard_count;
          }
        in
        match Net.Daemon.run cfg with
        | Ok () ->
            (match metrics with Some path -> Obs.Report.write path | None -> ())
        | Error e ->
            Printf.eprintf "error: %s\n" e;
            exit 1)
  in
  let tail_ticks_arg =
    let doc = "All-drained rounds to run before a clean session end." in
    Arg.(value & opt int 64 & info [ "tail-ticks" ] ~docv:"N" ~doc)
  in
  let tick_timeout_arg =
    let doc = "Seconds before an unanswered Tick is re-sent." in
    Arg.(value & opt float 0.5 & info [ "tick-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let max_conns_arg =
    let doc = "Connection limit; excess connections are rejected busy." in
    Arg.(value & opt int 64 & info [ "max-conns" ] ~docv:"N" ~doc)
  in
  let admin_arg =
    let doc =
      "Serve read-only JSON snapshots (live registry including volatile \
       metrics, per-connection I/O gauges) on a second loopback port \
       ($(b,0) picks an ephemeral port; scrape with $(b,tcvs stats) or \
       $(b,tcvs top))."
    in
    Arg.(value & opt (some int) None & info [ "admin" ] ~docv:"PORT" ~doc)
  in
  let admin_port_file_arg =
    let doc = "Write the bound admin port to $(docv) (tmp+rename)." in
    Arg.(value & opt (some string) None & info [ "admin-port-file" ] ~docv:"FILE" ~doc)
  in
  let shard_id_arg =
    let doc =
      "Serve as shard $(docv) of a $(b,--shard-count)-way cluster: a 1-shard \
       store over this shard's slice of the seeded key space, accepting only \
       a router's shard-link connection (see $(b,tcvs route))."
    in
    Arg.(value & opt (some int) None & info [ "shard-id" ] ~docv:"I" ~doc)
  in
  let shard_count_arg =
    let doc = "Total shards in the cluster (with $(b,--shard-id))." in
    Arg.(value & opt int 1 & info [ "shard-count" ] ~docv:"N" ~doc)
  in
  let doc = "Serve the Trusted-CVS server as a TCP daemon over a durable store." in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ seed_arg $ users_arg $ k_arg $ epoch_arg $ protocol_arg
      $ adversary_arg $ sanitize_arg $ verbosity_arg $ listen_arg $ port_file_arg
      $ store_arg $ shards_arg $ shard_id_arg $ shard_count_arg $ durability_arg
      $ tail_ticks_arg $ tick_timeout_arg $ max_conns_arg $ journal_arg $ admin_arg
      $ admin_port_file_arg $ metrics_arg)

let client_cmd =
  let run seed users rounds k epoch_len protocol_str verbosity connect user shards
      response_timeout sync_timeout max_reconnects journal =
    Log_setup.install ~level:verbosity ();
    match (protocol_conv k epoch_len protocol_str, parse_hostport connect) with
    | Error (`Msg m), _ | _, Error m ->
        Printf.eprintf "error: %s\n" m;
        exit 2
    | Ok protocol, Ok (host, port) -> (
        (* Same generator as `simulate`, lowered with the same global
           write numbering — verdicts are comparable byte-for-byte. *)
        let script =
          Harness.script_of_events (generated_workload ~users ~rounds ~seed)
        in
        let cfg =
          {
            (Net.Client.default_config ~user ~port) with
            Net.Client.host;
            users;
            protocol;
            seed;
            script;
            shards = Option.value ~default:1 shards;
            response_timeout = Some response_timeout;
            sync_timeout;
            max_reconnects;
            journal;
          }
        in
        match Net.Client.run cfg with
        | Error e ->
            Printf.eprintf "error: %s\n" e;
            exit 1
        | Ok v ->
            Printf.printf "user          : %d\n" user;
            Printf.printf "rounds        : %d\n" v.Net.Client.v_rounds;
            Printf.printf "reconnects    : %d\n" v.Net.Client.v_reconnects;
            Printf.printf "session       : %s%s\n"
              (if v.Net.Client.v_session_alarmed then "ALARMED" else "clean")
              (if v.Net.Client.v_session_reason = "" then ""
               else " (" ^ v.Net.Client.v_session_reason ^ ")");
            List.iter
              (fun (round, reason) ->
                Printf.printf "local alarm   : round %d: %s\n" round reason)
              v.Net.Client.v_local_alarms;
            Printf.printf "verdict       : %s\n"
              (if v.Net.Client.v_alarmed then "ALARM" else "clean");
            exit (if v.Net.Client.v_alarmed then 3 else 0))
  in
  let user_arg =
    let doc = "This client's user id (0-based; each id connects exactly once)." in
    Arg.(required & opt (some int) None & info [ "user"; "u" ] ~docv:"ID" ~doc)
  in
  let response_timeout_arg =
    let doc = "Alarm when a transaction gets no response within $(docv) rounds." in
    Arg.(value & opt int 64 & info [ "response-timeout" ] ~docv:"ROUNDS" ~doc)
  in
  let sync_timeout_arg =
    let doc =
      "Protocol II: alarm when a sync session stays unresolved for $(docv) \
       rounds (partial synchrony on the external channel; required to detect \
       a partitioned broadcast network)."
    in
    Arg.(value & opt (some int) None & info [ "sync-timeout" ] ~docv:"ROUNDS" ~doc)
  in
  let max_reconnects_arg =
    let doc = "Reconnection attempts (exponential backoff) before giving up." in
    Arg.(value & opt int 8 & info [ "max-reconnects" ] ~docv:"N" ~doc)
  in
  let doc = "Run one protocol user against a tcvs serve daemon." in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run $ seed_arg $ users_arg $ rounds_arg $ k_arg $ epoch_arg $ protocol_arg
      $ verbosity_arg $ connect_arg $ user_arg $ shards_arg $ response_timeout_arg
      $ sync_timeout_arg $ max_reconnects_arg $ journal_arg)

let proxy_cmd =
  let parse_partition s =
    let ints x = String.split_on_char ',' x |> List.filter_map int_of_string_opt in
    match String.split_on_char '@' s with
    | [ groups; r ] -> (
        match (String.split_on_char '|' groups, int_of_string_opt r) with
        | [ a; b ], Some from_round -> Ok (ints a, ints b, from_round)
        | _ -> Error (Printf.sprintf "cannot parse partition %S (want A,..|B,..@ROUND)" s))
    | _ -> Error (Printf.sprintf "cannot parse partition %S (want A,..|B,..@ROUND)" s)
  in
  let run verbosity listen port_file connect seed drop delay duplicate partition_str
      journal =
    Log_setup.install ~level:verbosity ();
    let partition =
      match partition_str with
      | None -> Ok None
      | Some s -> Result.map Option.some (parse_partition s)
    in
    match (parse_hostport connect, partition) with
    | Error m, _ | _, Error m ->
        Printf.eprintf "error: %s\n" m;
        exit 2
    | Ok (dst_host, dst_port), Ok partition -> (
        let cfg =
          {
            (Net.Proxy.default_config ~dst_port) with
            Net.Proxy.listen_port = listen;
            port_file;
            dst_host;
            seed;
            faults = { Net.Proxy.drop; delay; duplicate; partition };
            journal;
          }
        in
        match Net.Proxy.run cfg with
        | Ok () -> ()
        | Error e ->
            Printf.eprintf "error: %s\n" e;
            exit 1)
  in
  let prob name doc = Arg.(value & opt float 0. & info [ name ] ~docv:"P" ~doc) in
  let partition_arg =
    let doc =
      "Partition the broadcast relay between user groups from a round on, e.g. \
       $(b,0,1|2,3\\@40): server-to-client Delivers crossing the cut are dropped."
    in
    Arg.(value & opt (some string) None & info [ "partition" ] ~docv:"SPEC" ~doc)
  in
  let doc =
    "Fault-injecting TCP proxy between tcvs clients and a tcvs serve daemon \
     (drops, delays, duplicates and partitions payload frames; Figure 1 over \
     real sockets)."
  in
  Cmd.v (Cmd.info "proxy" ~doc)
    Term.(
      const run $ verbosity_arg $ listen_arg $ port_file_arg $ connect_arg $ seed_arg
      $ prob "drop" "Drop each payload frame with probability $(docv)."
      $ prob "delay" "Delay each payload frame to the next round boundary with probability $(docv)."
      $ prob "duplicate" "Forward each payload frame twice with probability $(docv)."
      $ partition_arg $ journal_arg)

(* ---- cluster: route / serve-cluster --------------------------------------- *)

let wait_port_file ?(timeout = 15.0) path =
  let deadline = Unix.gettimeofday () +. timeout in
  let read () =
    match open_in path with
    | exception Sys_error _ -> None
    | ic ->
        let line = try Some (input_line ic) with End_of_file -> None in
        close_in ic;
        Option.bind line (fun l ->
            match int_of_string_opt (String.trim l) with
            | Some p when p > 0 -> Some p
            | _ -> None)
  in
  let rec loop () =
    match read () with
    | Some p -> Ok p
    | None ->
        if Unix.gettimeofday () > deadline then
          Error (Printf.sprintf "timed out waiting for port file %s" path)
        else begin
          Unix.sleepf 0.05;
          loop ()
        end
  in
  loop ()

let spawn_tcvs args =
  Unix.create_process Sys.executable_name
    (Array.of_list (Filename.basename Sys.executable_name :: args))
    Unix.stdin Unix.stdout Unix.stderr

(* SIGTERM first (the daemons drain), SIGKILL whoever outstays it. *)
let reap_children ?(timeout = 5.0) pids =
  List.iter (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()) pids;
  let deadline = Unix.gettimeofday () +. timeout in
  List.iter
    (fun pid ->
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
            if Unix.gettimeofday () > deadline then begin
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (Unix.waitpid [] pid)
            end
            else begin
              Unix.sleepf 0.05;
              wait ()
            end
        | _ -> ()
      in
      try wait () with Unix.Unix_error _ -> ())
    pids

let fresh_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

(* Spawn the N shard daemons of a cluster and wait for their ports.
   Shards run the plain protocol: composition and verification live at
   the router and the clients; signing protocols stay single-daemon. *)
let start_shards ~dir ~shards ~seed ?store_base ?journal_base () =
  let spawn i =
    let pf = Filename.concat dir (Printf.sprintf "shard%d.port" i) in
    let args =
      [
        "serve"; "--shard-id"; string_of_int i; "--shard-count";
        string_of_int shards; "--protocol"; "none"; "--listen"; "0";
        "--port-file"; pf; "--seed"; seed;
      ]
      @ (match store_base with
        | Some b -> [ "--store"; Filename.concat b (Printf.sprintf "shard%d" i) ]
        | None -> [])
      @
      match journal_base with
      | Some b -> [ "--journal"; Filename.concat b (Printf.sprintf "shard%d.jsonl" i) ]
      | None -> []
    in
    (spawn_tcvs args, pf)
  in
  let procs = List.init shards spawn in
  let pids = List.map fst procs in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | (_, pf) :: rest -> (
        match wait_port_file pf with
        | Ok p -> collect (p :: acc) rest
        | Error e ->
            reap_children pids;
            Error e)
  in
  Result.map (fun ports -> (pids, ports)) (collect [] procs)

let route_cmd =
  let run verbosity listen port_file shard_strs shard_port_files users files
      tail_ticks tick_timeout barrier_timeout barrier_retries max_conns journal
      admin_port admin_port_file metrics =
    Log_setup.install ~level:verbosity ();
    let addrs =
      List.map parse_hostport shard_strs
      @ List.map
          (fun pf -> Result.map (fun p -> ("127.0.0.1", p)) (wait_port_file pf))
          shard_port_files
    in
    match
      List.fold_left
        (fun acc r ->
          match (acc, r) with
          | Error m, _ -> Error m
          | _, Error m -> Error m
          | Ok l, Ok a -> Ok (a :: l))
        (Ok []) addrs
    with
    | Error m ->
        Printf.eprintf "error: %s\n" m;
        exit 2
    | Ok rev_addrs -> (
        let shard_addrs = Array.of_list (List.rev rev_addrs) in
        let cfg =
          {
            (Net.Router.default_config ~shard_addrs) with
            Net.Router.listen_port = listen;
            port_file;
            files;
            users;
            max_conns;
            tick_timeout;
            tail_ticks;
            barrier_timeout;
            barrier_retries;
            journal;
            admin_port;
            admin_port_file;
          }
        in
        match Net.Router.run cfg with
        | Ok () ->
            (match metrics with Some path -> Obs.Report.write path | None -> ())
        | Error e ->
            Printf.eprintf "error: %s\n" e;
            exit 1)
  in
  let shard_arg =
    let doc =
      "A shard daemon's address (repeat once per shard, in shard-id order)."
    in
    Arg.(value & opt_all string [] & info [ "shard" ] ~docv:"HOST:PORT" ~doc)
  in
  let shard_port_file_arg =
    let doc =
      "Read a shard daemon's loopback port from $(docv) (repeatable; appended \
       after $(b,--shard) addresses in shard-id order; waits for the file)."
    in
    Arg.(value & opt_all string [] & info [ "shard-port-file" ] ~docv:"FILE" ~doc)
  in
  let files_arg =
    let doc = "Seeded key-space size — must match the shard daemons." in
    Arg.(value & opt int 32 & info [ "files" ] ~docv:"N" ~doc)
  in
  let tail_ticks_arg =
    let doc = "All-drained rounds to run before a clean session end." in
    Arg.(value & opt int 64 & info [ "tail-ticks" ] ~docv:"N" ~doc)
  in
  let tick_timeout_arg =
    let doc = "Seconds before an unanswered Tick is re-sent." in
    Arg.(value & opt float 0.5 & info [ "tick-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let barrier_timeout_arg =
    let doc = "Seconds before an unanswered Prepare is re-sent." in
    Arg.(value & opt float 0.5 & info [ "barrier-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let barrier_retries_arg =
    let doc = "Prepare retries before the barrier-wedged alarm ends the session." in
    Arg.(value & opt int 20 & info [ "barrier-retries" ] ~docv:"N" ~doc)
  in
  let max_conns_arg =
    let doc = "Connection limit; excess connections are rejected busy." in
    Arg.(value & opt int 64 & info [ "max-conns" ] ~docv:"N" ~doc)
  in
  let admin_arg =
    let doc =
      "Serve read-only JSON snapshots (cluster topology, per-shard serial \
       roots, live registry) on a second loopback port ($(b,0) picks an \
       ephemeral port)."
    in
    Arg.(value & opt (some int) None & info [ "admin" ] ~docv:"PORT" ~doc)
  in
  let admin_port_file_arg =
    let doc = "Write the bound admin port to $(docv) (tmp+rename)." in
    Arg.(value & opt (some string) None & info [ "admin-port-file" ] ~docv:"FILE" ~doc)
  in
  let doc =
    "Route clients over a cluster of shard daemons, composing the \
     client-visible root from per-shard proofs with a two-phase round barrier."
  in
  Cmd.v (Cmd.info "route" ~doc)
    Term.(
      const run $ verbosity_arg $ listen_arg $ port_file_arg $ shard_arg
      $ shard_port_file_arg $ users_arg $ files_arg $ tail_ticks_arg
      $ tick_timeout_arg $ barrier_timeout_arg $ barrier_retries_arg
      $ max_conns_arg $ journal_arg $ admin_arg $ admin_port_file_arg
      $ metrics_arg)

let serve_cluster_cmd =
  let run verbosity listen port_file shards users seed store_base journal_base
      tail_ticks tick_timeout admin_port admin_port_file metrics =
    Log_setup.install ~level:verbosity ();
    if shards < 1 then begin
      Printf.eprintf "error: --shards must be at least 1\n";
      exit 2
    end;
    Option.iter (fun b -> if not (Sys.file_exists b) then Unix.mkdir b 0o755) store_base;
    Option.iter (fun b -> if not (Sys.file_exists b) then Unix.mkdir b 0o755) journal_base;
    let dir = fresh_dir "tcvs-cluster" in
    match start_shards ~dir ~shards ~seed ?store_base ?journal_base () with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 1
    | Ok (pids, ports) -> (
        let cfg =
          {
            (Net.Router.default_config
               ~shard_addrs:
                 (Array.of_list (List.map (fun p -> ("127.0.0.1", p)) ports)))
            with
            Net.Router.listen_port = listen;
            port_file;
            users;
            tick_timeout;
            tail_ticks;
            journal =
              Option.map (fun b -> Filename.concat b "router.jsonl") journal_base;
            admin_port;
            admin_port_file;
          }
        in
        let result = Net.Router.run cfg in
        reap_children pids;
        match result with
        | Ok () ->
            (match metrics with Some path -> Obs.Report.write path | None -> ())
        | Error e ->
            Printf.eprintf "error: %s\n" e;
            exit 1)
  in
  let shards_arg =
    let doc = "Shard daemons to spawn (one process per key-range shard)." in
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let store_base_arg =
    let doc = "Give each shard a durable store under $(docv)/shard$(i,I)." in
    Arg.(value & opt (some string) None & info [ "store-base" ] ~docv:"DIR" ~doc)
  in
  let journal_base_arg =
    let doc =
      "Write per-process span journals under $(docv) (router.jsonl and one \
       shard$(i,I).jsonl each; merge with $(b,tcvs trace-join))."
    in
    Arg.(value & opt (some string) None & info [ "journal-base" ] ~docv:"DIR" ~doc)
  in
  let tail_ticks_arg =
    let doc = "All-drained rounds to run before a clean session end." in
    Arg.(value & opt int 64 & info [ "tail-ticks" ] ~docv:"N" ~doc)
  in
  let tick_timeout_arg =
    let doc = "Seconds before an unanswered Tick is re-sent." in
    Arg.(value & opt float 0.5 & info [ "tick-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let admin_arg =
    let doc = "Router admin endpoint port ($(b,0) picks an ephemeral port)." in
    Arg.(value & opt (some int) None & info [ "admin" ] ~docv:"PORT" ~doc)
  in
  let admin_port_file_arg =
    let doc = "Write the router's bound admin port to $(docv)." in
    Arg.(value & opt (some string) None & info [ "admin-port-file" ] ~docv:"FILE" ~doc)
  in
  let doc =
    "Spawn a full sharded deployment — $(b,--shards) shard daemons plus the \
     composing router — as one foreground command."
  in
  Cmd.v (Cmd.info "serve-cluster" ~doc)
    Term.(
      const run $ verbosity_arg $ listen_arg $ port_file_arg $ shards_arg
      $ users_arg $ seed_arg $ store_base_arg $ journal_base_arg $ tail_ticks_arg
      $ tick_timeout_arg $ admin_arg $ admin_port_file_arg $ metrics_arg)

let bench_net_cmd =
  let bench_once ~label ~host ~port ~users ~conns ~ops ~files ~zipf_s ~write_ratio
      ~seed =
    match
      Net.Client.bench ~host ~port ~users ~conns ~ops_per_conn:ops ~files ~zipf_s
        ~write_ratio ~seed
    with
    | Error e ->
        Printf.eprintf "error: bench %s: %s\n" label e;
        exit 1
    | Ok r ->
        Printf.printf
          "%-14s %3d conns: %6d ops in %6.2fs  %8.1f ops/s  p50 %6.3fms  p95 \
           %6.3fms  p99 %6.3fms\n\
           %!"
          label r.Net.Client.b_conns r.Net.Client.b_ops r.Net.Client.b_seconds
          r.Net.Client.b_throughput r.Net.Client.b_p50_ms r.Net.Client.b_p95_ms
          r.Net.Client.b_p99_ms;
        r
  in
  let result_json (r : Net.Client.bench_result) extra =
    Printf.sprintf
      "{ %s\"conns\": %d, \"ops\": %d, \"seconds\": %.3f, \
       \"throughput_ops_s\": %.1f, \"latency_ms\": { \"mean\": %.3f, \"p50\": \
       %.3f, \"p95\": %.3f, \"p99\": %.3f } }"
      extra r.Net.Client.b_conns r.Net.Client.b_ops r.Net.Client.b_seconds
      r.Net.Client.b_throughput r.Net.Client.b_mean_ms r.Net.Client.b_p50_ms
      r.Net.Client.b_p95_ms r.Net.Client.b_p99_ms
  in
  (* One shard-count data point: a throwaway cluster (N shard daemons +
     a routing process), benched and torn down. *)
  let bench_cluster ~shards ~users ~conns ~ops ~files ~zipf_s ~write_ratio ~seed =
    let dir = fresh_dir "tcvs-bench-cluster" in
    match start_shards ~dir ~shards ~seed () with
    | Error e ->
        Printf.eprintf "error: cluster of %d: %s\n" shards e;
        exit 1
    | Ok (pids, ports) -> (
        let rpf = Filename.concat dir "router.port" in
        let rpid =
          spawn_tcvs
            ([
               "route"; "--listen"; "0"; "--port-file"; rpf; "--users";
               string_of_int users; "--files"; string_of_int files;
             ]
            @ List.concat_map
                (fun p -> [ "--shard"; Printf.sprintf "127.0.0.1:%d" p ])
                ports)
        in
        match wait_port_file rpf with
        | Error e ->
            reap_children (rpid :: pids);
            Printf.eprintf "error: cluster of %d: %s\n" shards e;
            exit 1
        | Ok port ->
            let r =
              bench_once
                ~label:(Printf.sprintf "router/%d" shards)
                ~host:"127.0.0.1" ~port ~users ~conns ~ops ~files ~zipf_s
                ~write_ratio ~seed
            in
            reap_children (rpid :: pids);
            r)
  in
  let run verbosity connect users conns_str ops files zipf_s write_ratio seed
      cluster_shards_str cluster_conns out =
    Log_setup.install ~level:verbosity ();
    let conns_list = String.split_on_char ',' conns_str |> List.filter_map int_of_string_opt in
    let cluster_list =
      if cluster_shards_str = "" then []
      else
        String.split_on_char ',' cluster_shards_str
        |> List.filter_map int_of_string_opt
    in
    if connect = None && cluster_list = [] then begin
      Printf.eprintf "error: need --connect, --cluster-shards, or both\n";
      exit 2
    end;
    let results =
      match connect with
      | None -> []
      | Some c -> (
          match parse_hostport c with
          | Error m ->
              Printf.eprintf "error: %s\n" m;
              exit 2
          | Ok (host, port) ->
              List.map
                (fun conns ->
                  bench_once ~label:"direct" ~host ~port ~users ~conns ~ops ~files
                    ~zipf_s ~write_ratio ~seed)
                conns_list)
    in
    let cluster =
      if cluster_list = [] then []
      else begin
        (* the single-daemon yardstick the router sweep is read against *)
        let dir = fresh_dir "tcvs-bench-single" in
        let pf = Filename.concat dir "daemon.port" in
        let pid =
          spawn_tcvs
            [ "serve"; "--protocol"; "none"; "--users"; string_of_int users;
              "--listen"; "0"; "--port-file"; pf; "--seed"; seed ]
        in
        let single =
          match wait_port_file pf with
          | Error e ->
              reap_children [ pid ];
              Printf.eprintf "error: single-daemon baseline: %s\n" e;
              exit 1
          | Ok port ->
              let r =
                bench_once ~label:"single" ~host:"127.0.0.1" ~port ~users
                  ~conns:cluster_conns ~ops ~files ~zipf_s ~write_ratio ~seed
              in
              reap_children [ pid ];
              ("\"topology\": \"single\", \"shards\": 1, ", r)
        in
        single
        :: List.map
             (fun shards ->
               ( Printf.sprintf "\"topology\": \"router\", \"shards\": %d, " shards,
                 bench_cluster ~shards ~users ~conns:cluster_conns ~ops ~files
                   ~zipf_s ~write_ratio ~seed ))
             cluster_list
      end
    in
    let buf = Buffer.create 1024 in
    Printf.bprintf buf "{\n  \"experiment\": \"bench-net\",\n";
    Printf.bprintf buf "  \"ops_per_conn\": %d,\n  \"files\": %d,\n" ops files;
    Printf.bprintf buf "  \"zipf_s\": %.2f,\n  \"write_ratio\": %.2f,\n" zipf_s
      write_ratio;
    Printf.bprintf buf "  \"seed\": \"%s\",\n  \"results\": [\n" (String.escaped seed);
    List.iteri
      (fun i r ->
        Printf.bprintf buf "    %s%s\n" (result_json r "")
          (if i = List.length results - 1 then "" else ","))
      results;
    Printf.bprintf buf "  ],\n  \"cluster\": [\n";
    List.iteri
      (fun i (extra, r) ->
        Printf.bprintf buf "    %s%s\n" (result_json r extra)
          (if i = List.length cluster - 1 then "" else ","))
      cluster;
    Printf.bprintf buf "  ]\n}\n";
    let oc = open_out out in
    Buffer.output_buffer oc buf;
    close_out oc;
    Printf.printf "wrote %s\n" out
  in
  let conns_arg =
    let doc = "Comma-separated concurrent-connection counts to sweep." in
    Arg.(value & opt string "1,4,16" & info [ "conns" ] ~docv:"LIST" ~doc)
  in
  let ops_arg =
    let doc = "Closed-loop operations per connection." in
    Arg.(value & opt int 200 & info [ "ops" ] ~docv:"N" ~doc)
  in
  let files_arg =
    let doc = "Key space size (must match the daemon's --files default of 32)." in
    Arg.(value & opt int 32 & info [ "files" ] ~docv:"N" ~doc)
  in
  let zipf_arg =
    let doc = "Zipf exponent for key popularity (0 = uniform)." in
    Arg.(value & opt float 1.1 & info [ "zipf-s" ] ~docv:"S" ~doc)
  in
  let write_ratio_arg =
    let doc = "Fraction of operations that are writes." in
    Arg.(value & opt float 0.2 & info [ "write-ratio" ] ~docv:"P" ~doc)
  in
  let out_arg =
    let doc = "Write the JSON results to $(docv)." in
    Arg.(value & opt string "BENCH_net.json" & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let bench_connect_arg =
    let doc =
      "Existing server to sweep $(b,--conns) against, as HOST:PORT or just \
       PORT; omit to run only the $(b,--cluster-shards) sweep."
    in
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT" ~doc)
  in
  let cluster_shards_arg =
    let doc =
      "Comma-separated shard counts: for each, spawn that many shard daemons \
       plus a router, bench through the router at $(b,--cluster-conns) \
       connections, and record it against a spawned single-daemon baseline."
    in
    Arg.(value & opt string "" & info [ "cluster-shards" ] ~docv:"LIST" ~doc)
  in
  let cluster_conns_arg =
    let doc = "Fixed client-connection count for the cluster sweep." in
    Arg.(value & opt int 4 & info [ "cluster-conns" ] ~docv:"N" ~doc)
  in
  let doc =
    "Closed-loop throughput/latency benchmark against a tcvs serve daemon \
     (free-mode connections, Zipf-distributed keys), with an optional \
     router-vs-single-daemon cluster sweep."
  in
  Cmd.v (Cmd.info "bench-net" ~doc)
    Term.(
      const run $ verbosity_arg $ bench_connect_arg $ users_arg $ conns_arg
      $ ops_arg $ files_arg $ zipf_arg $ write_ratio_arg $ seed_arg
      $ cluster_shards_arg $ cluster_conns_arg $ out_arg)

(* ---- telemetry plane: trace-join / stats / top ----------------------------- *)

let read_journal_lines path =
  let ic = open_in_bin path in
  let rec loop acc =
    match input_line ic with
    | line -> loop (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  loop []

let trace_join_cmd =
  let run files =
    let lines =
      List.concat_map
        (fun path ->
          if Sys.file_exists path then read_journal_lines path
          else begin
            Printf.eprintf "error: no such journal: %s\n" path;
            exit 2
          end)
        files
    in
    let text, s = Obs.Trace_join.join lines in
    print_string text;
    if s.Obs.Trace_join.orphans > 0 then exit 4
  in
  let files_arg =
    let doc = "Journal files (JSON lines) written with --journal, in any order." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE" ~doc)
  in
  let doc =
    "Merge the per-process span journals of a session (daemon, proxy, clients) \
     into one deterministic round-ordered timeline: client queue, proxy fault \
     plane, daemon dispatch, store flush, reply. Duplicate lines are dropped, \
     torn tails skipped, and spans that never reached a reply are reported as \
     orphaned (exit 4)."
  in
  Cmd.v (Cmd.info "trace-join" ~doc) Term.(const run $ files_arg)

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
    | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
    | _ -> raise (Failure ("cannot resolve " ^ host)))

(* One admin scrape: connect, read to EOF, return the snapshot. *)
let scrape ~host ~port =
  match
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_INET (resolve_host host, port)) with
    | () -> Ok fd
    | exception Unix.Unix_error (err, _, _) ->
        Unix.close fd;
        Error (Unix.error_message err)
  with
  | Error e -> Error e
  | Ok fd ->
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec loop () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      in
      loop ();
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Ok (Buffer.contents buf)

let stats_cmd =
  let run connect =
    match parse_hostport connect with
    | Error m ->
        Printf.eprintf "error: %s\n" m;
        exit 2
    | Ok (host, port) -> (
        match scrape ~host ~port with
        | Error e ->
            Printf.eprintf "error: cannot scrape %s:%d: %s\n" host port e;
            exit 1
        | Ok body -> print_string body)
  in
  let doc =
    "Scrape a daemon's admin endpoint (tcvs serve --admin) once and print the \
     JSON snapshot: round, per-connection I/O gauges, and the live metric \
     registry including volatile counters and latency histograms."
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ connect_arg)

let top_cmd =
  let module J = Obs.Json in
  let jint ?(default = 0) j path =
    let rec dig j = function
      | [] -> ( match j with J.Int n -> Some n | J.Float f -> Some (int_of_float f) | _ -> None)
      | k :: rest -> ( match J.member k j with Some j' -> dig j' rest | None -> None)
    in
    Option.value ~default (dig j path)
  in
  let render ~host ~port body =
    match J.parse body with
    | Error e -> Printf.printf "unparseable snapshot: %s\n" e
    | Ok j ->
        Printf.printf "tcvs top — %s:%d    round %d    ticking %s    sessions %d\n"
          host port (jint j [ "round" ])
          (match J.member "ticking" j with Some (J.Bool b) -> string_of_bool b | _ -> "?")
          (jint j [ "sessions" ]);
        Printf.printf "outstanding %d    relays pending %d\n\n"
          (jint j [ "outstanding" ])
          (jint j [ "relays_pending" ]);
        Printf.printf "%4s %-9s %9s %9s %11s %11s %8s %6s %4s\n" "USER" "ROLE"
          "FRAMES_IN" "FRAMES_OUT" "BYTES_IN" "BYTES_OUT" "BACKLOG" "DEDUP" "OUT";
        (match J.member "connections" j with
        | Some (J.Arr conns) ->
            List.iter
              (fun c ->
                Printf.printf "%4d %-9s %9d %9d %11d %11d %8d %6d %4d\n"
                  (jint c [ "user" ])
                  (match J.member "role" c with Some (J.Str s) -> s | _ -> "?")
                  (jint c [ "frames_in" ]) (jint c [ "frames_out" ])
                  (jint c [ "bytes_in" ]) (jint c [ "bytes_out" ])
                  (jint c [ "backlog_bytes" ])
                  (jint c [ "dedup_hits" ])
                  (jint c [ "outstanding" ]))
              conns
        | _ -> ());
        let reg = Option.value ~default:J.Null (J.member "registry" j) in
        Printf.printf "\n%-32s %d\n%-32s %d\n%-32s %d\n%-32s %d\n"
          "net.daemon.requests_executed"
          (jint reg [ "counters"; "net.daemon.requests_executed" ])
          "net.daemon.dedup_hits"
          (jint reg [ "counters"; "net.daemon.dedup_hits" ])
          "net.frames_received"
          (jint reg [ "counters"; "net.frames_received" ])
          "store.wal.fsyncs"
          (jint reg [ "counters"; "store.wal.fsyncs" ]);
        let hist name =
          match J.member "histograms" reg with
          | Some h -> (
              match J.member name h with
              | Some hj ->
                  let count = jint hj [ "count" ] in
                  Printf.printf "%-32s count %-8d mean %-10d min %-10d max %d\n" name
                    count
                    (if count > 0 then jint hj [ "sum" ] / count else 0)
                    (jint hj [ "min" ]) (jint hj [ "max" ])
              | None -> ())
          | None -> ()
        in
        hist "net.daemon.round_us";
        hist "store.wal.fsync_us"
  in
  let run connect interval count =
    match parse_hostport connect with
    | Error m ->
        Printf.eprintf "error: %s\n" m;
        exit 2
    | Ok (host, port) ->
        let rec loop i =
          if count = 0 || i < count then begin
            (match scrape ~host ~port with
            | Error e ->
                print_string "\027[2J\027[H";
                Printf.printf "tcvs top — %s:%d unreachable: %s\n%!" host port e
            | Ok body ->
                (* clear + home between scrapes, not within, to avoid flicker *)
                print_string "\027[2J\027[H";
                render ~host ~port body;
                print_string "\n(ctrl-c to quit)\n";
                flush stdout);
            if count = 0 || i + 1 < count then
              ignore (Unix.select [] [] [] interval);
            loop (i + 1)
          end
        in
        loop 0
  in
  let interval_arg =
    let doc = "Seconds between scrapes." in
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SECONDS" ~doc)
  in
  let count_arg =
    let doc = "Stop after $(docv) scrapes (0 = run until interrupted)." in
    Arg.(value & opt int 0 & info [ "count" ] ~docv:"N" ~doc)
  in
  let doc =
    "Refreshing terminal view of a daemon's admin endpoint: live round, \
     per-connection frame/byte/backlog gauges, dedup hits, and round / fsync \
     latency histograms."
  in
  Cmd.v (Cmd.info "top" ~doc) Term.(const run $ connect_arg $ interval_arg $ count_arg)

(* ---- entry ----------------------------------------------------------------- *)

let () =
  (* Subcommands that take --verbosity re-install with the resolved
     level; this default covers the rest (and `--help` paths). *)
  Log_setup.install ();
  let doc = "Trusted CVS: detection protocols for untrusted version-control servers" in
  let info = Cmd.info "tcvs" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            simulate_cmd; matrix_cmd; workload_cmd; session_cmd; inspect_cmd;
            store_inspect_cmd; serve_cmd; client_cmd; proxy_cmd; route_cmd;
            serve_cluster_cmd; bench_net_cmd; trace_join_cmd; stats_cmd; top_cmd;
          ]))
