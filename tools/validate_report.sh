#!/usr/bin/env bash
# Sanity-check a tcvs --metrics JSON report.
#
#   tools/validate_report.sh report.json [--expect-detection]
#
# Checks, with no dependency beyond bash + grep:
#   - the schema marker and the required sections are present;
#   - the headline counters every experiment reads are present;
#   - no counter value is negative;
#   - with --expect-detection, the run actually recorded one.
set -euo pipefail

report=${1:?usage: validate_report.sh report.json [--expect-detection]}
expect_detection=${2:-}

fail() {
  echo "validate_report: $report: $1" >&2
  exit 1
}

[ -s "$report" ] || fail "missing or empty"

require() {
  grep -q "$1" "$report" || fail "missing $2"
}

require '"schema": "tcvs-obs/1"' 'schema marker'
require '"meta"' 'meta section'
require '"counters"' 'counters section'
require '"protocol"' 'protocol metadata'
require '"adversary"' 'adversary metadata'

for key in \
  sim.messages \
  sim.bytes \
  crypto.sha256.digests \
  crypto.sha256.bytes \
  mtree.vo_generated \
  mtree.vo_bytes \
  run.ops_completed \
  run.messages_per_op; do
  require "\"$key\"" "counter $key"
done

if grep -E '": -[0-9]' "$report" > /dev/null; then
  fail "negative metric value"
fi

if [ "$expect_detection" = "--expect-detection" ]; then
  require '"detection.detected": 1' 'detection record (expected an alarm)'
  require '"detection.round"' 'detection round'
  # detection.ops_after_violation is a counter, and the registry drops
  # zero-valued counters from the report: its absence means the alarm
  # beat every post-violation completion (protocol IV routinely does).
  if ! grep -q '"detection.ops_after_violation"' "$report" \
     && ! grep -q '"detection.latency_rounds"' "$report"; then
    fail "missing detection latency (neither ops nor rounds recorded)"
  fi
fi

echo "validate_report: $report ok"
