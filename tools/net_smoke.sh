#!/usr/bin/env bash
# Loopback smoke for the network stack (lib/net): a real daemon, real
# clients and the fault proxy on 127.0.0.1.
#
#   1. Full protocol-II session: 4 client processes through a proxy
#      injecting 10% drops / 5% duplicates, with a kill -9 of the
#      daemon mid-session and a restart from the same store — clients
#      must reconnect, the session must finish clean (exit 0). Every
#      process journals trace spans; the restarted daemon serves a
#      live admin endpoint that is scraped mid-session and checked
#      against its end-of-run metrics report.
#   2. trace-join over phase 1's journals: the joined timeline must
#      reconstruct every op as one complete span (exit 4 = orphans),
#      show all three process kinds, and be byte-identical when run
#      twice over the same files in a different order.
#   3. Figure 1 over TCP: a forking server plus a proxy partition of
#      the external broadcast channel — every client must raise a TRUE
#      ALARM (exit 3).
#   4. bench-net: closed-loop throughput/latency sweep over free-mode
#      connections, plus the router-vs-single-daemon shard sweep
#      (1/2/4 shards at a fixed client count), writing BENCH_net.json.
#   5. Sharded cluster: 2 shard daemons behind individual fault
#      proxies, a router composing their roots per round, and 2
#      lockstep clients running the full protocol through it. One
#      shard is kill -9'd mid-session and restarted from its store on
#      the same port; the clients must still finish clean. trace-join
#      over every journal (clients, router, proxies, shards) must show
#      client -> router -> shard spans in one timeline.
#
# Usage: tools/net_smoke.sh   (from the repository root, after a build)

set -euo pipefail

CLI=${CLI:-_build/default/bin/tcvs_cli.exe}
SEED=net-smoke
WORK=$(mktemp -d "${TMPDIR:-/tmp}/tcvs-net-smoke.XXXXXX")
PIDS=()

cleanup() {
  for pid in ${PIDS[@]+"${PIDS[@]}"}; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

# wait_port FILE: poll for a --port-file and print the bound port.
wait_port() {
  for _ in $(seq 1 200); do
    if [ -s "$1" ]; then
      cat "$1"
      return 0
    fi
    sleep 0.05
  done
  echo "timed out waiting for port file $1" >&2
  return 1
}

echo "== 1. proxied session with drops, kill -9 and restart =="

"$CLI" serve --store "$WORK/store" --shards 4 --users 4 --seed "$SEED" \
  --listen 0 --port-file "$WORK/daemon.port" \
  --journal "$WORK/daemon1.jsonl" &
DAEMON=$!
PIDS+=("$DAEMON")
DPORT=$(wait_port "$WORK/daemon.port")

"$CLI" proxy --connect "127.0.0.1:$DPORT" --listen 0 \
  --port-file "$WORK/proxy.port" --drop 0.10 --duplicate 0.05 \
  --seed "$SEED" --journal "$WORK/proxy.jsonl" &
PROXY=$!
PIDS+=("$PROXY")
PPORT=$(wait_port "$WORK/proxy.port")

CLIENTS=()
for u in 0 1 2 3; do
  "$CLI" client --connect "127.0.0.1:$PPORT" --user "$u" --users 4 \
    --shards 4 --rounds 3000 --seed "$SEED" \
    --journal "$WORK/client$u.jsonl" &
  CLIENTS+=("$!")
  PIDS+=("$!")
done

sleep 2
echo "-- kill -9 the daemon mid-session --"
kill -9 "$DAEMON"
wait "$DAEMON" 2>/dev/null || true

# Restart on the same port, resuming the same store: clients observe a
# new boot id, revalidate the handshake and replay unacked frames. The
# restarted daemon also serves the live admin plane and writes its
# registry report on exit.
"$CLI" serve --store "$WORK/store" --shards 4 --users 4 --seed "$SEED" \
  --listen "$DPORT" --port-file "$WORK/daemon2.port" \
  --journal "$WORK/daemon2.jsonl" \
  --admin 0 --admin-port-file "$WORK/admin.port" \
  --metrics "$WORK/daemon2-metrics.json" &
DAEMON=$!
PIDS+=("$DAEMON")
wait_port "$WORK/daemon2.port" >/dev/null
APORT=$(wait_port "$WORK/admin.port")

# Mid-session admin scrape: the session is still running (the clients
# have ~3000 rounds of script), so the snapshot must show live,
# non-zero counters.
sleep 1
"$CLI" stats --connect "127.0.0.1:$APORT" > "$WORK/live-stats.json"
LIVE_EXEC=$(grep -o '"net.daemon.requests_executed": [0-9]*' "$WORK/live-stats.json" \
  | grep -o '[0-9]*$')
grep -q '"schema": "tcvs-admin/1"' "$WORK/live-stats.json"
if [ -z "$LIVE_EXEC" ] || [ "$LIVE_EXEC" -le 0 ]; then
  echo "mid-session admin scrape shows no executed requests" >&2
  exit 1
fi
echo "-- live admin scrape: $LIVE_EXEC requests executed mid-session --"

for pid in "${CLIENTS[@]}"; do
  wait "$pid" # set -e: any non-zero client verdict fails the smoke
done
wait "$DAEMON"
kill "$PROXY" 2>/dev/null || true
wait "$PROXY" 2>/dev/null || true

# The end-of-run report is the same registry the admin plane served:
# the counter can only have grown since the scrape.
FINAL_EXEC=$(grep -o '"net.daemon.requests_executed": [0-9]*' "$WORK/daemon2-metrics.json" \
  | grep -o '[0-9]*$')
if [ -z "$FINAL_EXEC" ] || [ "$FINAL_EXEC" -lt "$LIVE_EXEC" ]; then
  echo "end-of-run report ($FINAL_EXEC) inconsistent with live scrape ($LIVE_EXEC)" >&2
  exit 1
fi
echo "-- all 4 clients finished clean across the restart ($FINAL_EXEC requests) --"

echo "== 2. trace-join: one deterministic timeline from 7 journals =="

JOURNALS=("$WORK/daemon1.jsonl" "$WORK/daemon2.jsonl" "$WORK/proxy.jsonl" \
  "$WORK/client0.jsonl" "$WORK/client1.jsonl" "$WORK/client2.jsonl" \
  "$WORK/client3.jsonl")

# Exit 4 would mean orphaned spans: an op that never found its reply
# even though every client finished clean.
"$CLI" trace-join "${JOURNALS[@]}" > "$WORK/trace1.txt"

# One complete round, reconstructed across all three process kinds.
grep -q 'client.send' "$WORK/trace1.txt"
grep -q 'proxy.to_server' "$WORK/trace1.txt"
grep -q 'daemon.dispatch' "$WORK/trace1.txt"
grep -q 'daemon.flush' "$WORK/trace1.txt"
grep -q 'span u[0-9]*#[0-9]* complete' "$WORK/trace1.txt"

# Determinism: same files, reversed order — byte-identical output.
REVERSED=()
for ((i = ${#JOURNALS[@]} - 1; i >= 0; i--)); do
  REVERSED+=("${JOURNALS[$i]}")
done
"$CLI" trace-join "${REVERSED[@]}" > "$WORK/trace2.txt"
cmp "$WORK/trace1.txt" "$WORK/trace2.txt"
echo "-- $(grep -c 'span u' "$WORK/trace1.txt") spans joined, deterministic --"

echo "== 3. Figure 1 over TCP: fork + partitioned broadcast channel =="

"$CLI" serve --users 4 --seed "$SEED" --adversary fork:12 \
  --listen 0 --port-file "$WORK/fig1.port" &
DAEMON=$!
PIDS+=("$DAEMON")
DPORT=$(wait_port "$WORK/fig1.port")

"$CLI" proxy --connect "127.0.0.1:$DPORT" --listen 0 \
  --port-file "$WORK/fig1-proxy.port" --partition '0,1|2,3@1' \
  --seed "$SEED" &
PROXY=$!
PIDS+=("$PROXY")
PPORT=$(wait_port "$WORK/fig1-proxy.port")

CLIENTS=()
for u in 0 1 2 3; do
  "$CLI" client --connect "127.0.0.1:$PPORT" --user "$u" --users 4 \
    --rounds 300 --sync-timeout 60 --seed "$SEED" &
  CLIENTS+=("$!")
  PIDS+=("$!")
done

for pid in "${CLIENTS[@]}"; do
  rc=0
  wait "$pid" || rc=$?
  if [ "$rc" -ne 3 ]; then
    echo "expected a TRUE ALARM (exit 3) from every client, got $rc" >&2
    exit 1
  fi
done
wait "$DAEMON" 2>/dev/null || true
kill "$PROXY" 2>/dev/null || true
wait "$PROXY" 2>/dev/null || true
echo "-- all 4 clients alarmed: TRUE ALARM over real sockets --"

echo "== 4. bench-net: closed-loop sweep into BENCH_net.json =="

"$CLI" serve --store "$WORK/bench-store" --shards 4 --users 16 \
  --seed "$SEED" --listen 0 --port-file "$WORK/bench.port" &
DAEMON=$!
PIDS+=("$DAEMON")
DPORT=$(wait_port "$WORK/bench.port")

"$CLI" bench-net --connect "127.0.0.1:$DPORT" --users 16 \
  --conns 1,4,16 --ops 200 --seed "$SEED" \
  --cluster-shards 1,2,4 --cluster-conns 4 --out BENCH_net.json

kill "$DAEMON" 2>/dev/null || true
wait "$DAEMON" 2>/dev/null || true

grep -q '"throughput_ops_s"' BENCH_net.json
grep -q '"topology": "router"' BENCH_net.json

echo "== 5. sharded cluster: router + 2 shards, faults, kill -9 =="

CDIR="$WORK/cluster"
mkdir -p "$CDIR"

# Two shard-scoped daemons, each with its own durable store + journal.
SHARDS=()
for i in 0 1; do
  "$CLI" serve --shard-id "$i" --shard-count 2 --protocol none \
    --seed "$SEED" --store "$CDIR/shard$i-store" \
    --listen 0 --port-file "$CDIR/shard$i.port" \
    --journal "$CDIR/shard$i.jsonl" &
  SHARDS+=("$!")
  PIDS+=("$!")
done
S0PORT=$(wait_port "$CDIR/shard0.port")
S1PORT=$(wait_port "$CDIR/shard1.port")

# A fault proxy in front of EACH shard daemon: the router<->shard hop
# sees drops and duplicates, exercising sub-request retransmission and
# the shard-side dedup. (Prepare/Shard_root/Commit are control frames
# the proxy never faults, like Tick on a client link.)
PROXIES=()
for i in 0 1; do
  eval "BPORT=\$S${i}PORT"
  "$CLI" proxy --connect "127.0.0.1:$BPORT" --listen 0 \
    --port-file "$CDIR/proxy$i.port" --drop 0.05 --duplicate 0.05 \
    --seed "$SEED-s$i" --journal "$CDIR/proxy$i.jsonl" &
  PROXIES+=("$!")
  PIDS+=("$!")
done
P0PORT=$(wait_port "$CDIR/proxy0.port")
P1PORT=$(wait_port "$CDIR/proxy1.port")

# The router talks to the shards through the proxies and composes the
# client-visible root each round via the prepare/commit barrier.
"$CLI" route --shard "127.0.0.1:$P0PORT" --shard "127.0.0.1:$P1PORT" \
  --users 2 --listen 0 --port-file "$CDIR/router.port" \
  --journal "$CDIR/router.jsonl" --metrics "$CDIR/router-metrics.json" &
ROUTER=$!
PIDS+=("$ROUTER")
RPORT=$(wait_port "$CDIR/router.port")

# Two lockstep clients running the real protocol against the cluster:
# their VO-chain verification pins every composed root the router
# publishes, so a stale or wrong composition cannot finish clean.
CLIENTS=()
for u in 0 1; do
  "$CLI" client --connect "127.0.0.1:$RPORT" --user "$u" --users 2 \
    --shards 2 --rounds 3000 --seed "$SEED" \
    --journal "$CDIR/client$u.jsonl" &
  CLIENTS+=("$!")
  PIDS+=("$!")
done

sleep 2
echo "-- kill -9 shard 1 mid-session --"
kill -9 "${SHARDS[1]}"
wait "${SHARDS[1]}" 2>/dev/null || true

# Restart shard 1 from the same store on the same port (the proxy's
# backend address is fixed): the router reconnects through the proxy
# and replays its in-flight sub-request; the shard's persistent dedup
# makes the replay exactly-once.
"$CLI" serve --shard-id 1 --shard-count 2 --protocol none \
  --seed "$SEED" --store "$CDIR/shard1-store" \
  --listen "$S1PORT" --port-file "$CDIR/shard1b.port" \
  --journal "$CDIR/shard1b.jsonl" &
SHARD1=$!
PIDS+=("$SHARD1")
wait_port "$CDIR/shard1b.port" >/dev/null

for pid in "${CLIENTS[@]}"; do
  wait "$pid" # set -e: any non-zero client verdict fails the smoke
done
echo "-- both clients finished clean across the shard restart --"

# Drain the cluster: router first (it ends the session), then shards.
kill "$ROUTER" 2>/dev/null || true
wait "$ROUTER" 2>/dev/null || true
for pid in "${SHARDS[0]}" "$SHARD1" "${PROXIES[@]}"; do
  kill "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
done

grep -q '"net.router.barriers_committed"' "$CDIR/router-metrics.json"

# One timeline across all 8 journals: every op must thread
# client -> router -> proxy -> shard and back as a complete span.
"$CLI" trace-join "$CDIR"/client0.jsonl "$CDIR"/client1.jsonl \
  "$CDIR"/router.jsonl "$CDIR"/proxy0.jsonl "$CDIR"/proxy1.jsonl \
  "$CDIR"/shard0.jsonl "$CDIR"/shard1.jsonl "$CDIR"/shard1b.jsonl \
  > "$CDIR/trace.txt"
grep -q 'client.send' "$CDIR/trace.txt"
grep -q 'router.route' "$CDIR/trace.txt"
grep -q 'proxy.to_server' "$CDIR/trace.txt"
grep -q 'daemon.dispatch' "$CDIR/trace.txt"
grep -q 'router.reply' "$CDIR/trace.txt"
grep -q 'span u[0-9]*#[0-9]* complete' "$CDIR/trace.txt"
echo "-- $(grep -c 'span u' "$CDIR/trace.txt") cluster spans joined --"

echo "== net smoke passed =="
