#!/usr/bin/env bash
# Loopback smoke for the network stack (lib/net): a real daemon, real
# clients and the fault proxy on 127.0.0.1.
#
#   1. Full protocol-II session: 4 client processes through a proxy
#      injecting 10% drops / 5% duplicates, with a kill -9 of the
#      daemon mid-session and a restart from the same store — clients
#      must reconnect, the session must finish clean (exit 0).
#   2. Figure 1 over TCP: a forking server plus a proxy partition of
#      the external broadcast channel — every client must raise a TRUE
#      ALARM (exit 3).
#   3. bench-net: closed-loop throughput/latency sweep over free-mode
#      connections, writing BENCH_net.json.
#
# Usage: tools/net_smoke.sh   (from the repository root, after a build)

set -euo pipefail

CLI=${CLI:-_build/default/bin/tcvs_cli.exe}
SEED=net-smoke
WORK=$(mktemp -d "${TMPDIR:-/tmp}/tcvs-net-smoke.XXXXXX")
PIDS=()

cleanup() {
  for pid in ${PIDS[@]+"${PIDS[@]}"}; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

# wait_port FILE: poll for a --port-file and print the bound port.
wait_port() {
  for _ in $(seq 1 200); do
    if [ -s "$1" ]; then
      cat "$1"
      return 0
    fi
    sleep 0.05
  done
  echo "timed out waiting for port file $1" >&2
  return 1
}

echo "== 1. proxied session with drops, kill -9 and restart =="

"$CLI" serve --store "$WORK/store" --shards 4 --users 4 --seed "$SEED" \
  --listen 0 --port-file "$WORK/daemon.port" &
DAEMON=$!
PIDS+=("$DAEMON")
DPORT=$(wait_port "$WORK/daemon.port")

"$CLI" proxy --connect "127.0.0.1:$DPORT" --listen 0 \
  --port-file "$WORK/proxy.port" --drop 0.10 --duplicate 0.05 \
  --seed "$SEED" &
PROXY=$!
PIDS+=("$PROXY")
PPORT=$(wait_port "$WORK/proxy.port")

CLIENTS=()
for u in 0 1 2 3; do
  "$CLI" client --connect "127.0.0.1:$PPORT" --user "$u" --users 4 \
    --shards 4 --rounds 3000 --seed "$SEED" &
  CLIENTS+=("$!")
  PIDS+=("$!")
done

sleep 2
echo "-- kill -9 the daemon mid-session --"
kill -9 "$DAEMON"
wait "$DAEMON" 2>/dev/null || true

# Restart on the same port, resuming the same store: clients observe a
# new boot id, revalidate the handshake and replay unacked frames.
"$CLI" serve --store "$WORK/store" --shards 4 --users 4 --seed "$SEED" \
  --listen "$DPORT" --port-file "$WORK/daemon2.port" &
DAEMON=$!
PIDS+=("$DAEMON")
wait_port "$WORK/daemon2.port" >/dev/null

for pid in "${CLIENTS[@]}"; do
  wait "$pid" # set -e: any non-zero client verdict fails the smoke
done
wait "$DAEMON"
kill "$PROXY" 2>/dev/null || true
wait "$PROXY" 2>/dev/null || true
echo "-- all 4 clients finished clean across the restart --"

echo "== 2. Figure 1 over TCP: fork + partitioned broadcast channel =="

"$CLI" serve --users 4 --seed "$SEED" --adversary fork:12 \
  --listen 0 --port-file "$WORK/fig1.port" &
DAEMON=$!
PIDS+=("$DAEMON")
DPORT=$(wait_port "$WORK/fig1.port")

"$CLI" proxy --connect "127.0.0.1:$DPORT" --listen 0 \
  --port-file "$WORK/fig1-proxy.port" --partition '0,1|2,3@1' \
  --seed "$SEED" &
PROXY=$!
PIDS+=("$PROXY")
PPORT=$(wait_port "$WORK/fig1-proxy.port")

CLIENTS=()
for u in 0 1 2 3; do
  "$CLI" client --connect "127.0.0.1:$PPORT" --user "$u" --users 4 \
    --rounds 300 --sync-timeout 60 --seed "$SEED" &
  CLIENTS+=("$!")
  PIDS+=("$!")
done

for pid in "${CLIENTS[@]}"; do
  rc=0
  wait "$pid" || rc=$?
  if [ "$rc" -ne 3 ]; then
    echo "expected a TRUE ALARM (exit 3) from every client, got $rc" >&2
    exit 1
  fi
done
wait "$DAEMON" 2>/dev/null || true
kill "$PROXY" 2>/dev/null || true
wait "$PROXY" 2>/dev/null || true
echo "-- all 4 clients alarmed: TRUE ALARM over real sockets --"

echo "== 3. bench-net: closed-loop sweep into BENCH_net.json =="

"$CLI" serve --store "$WORK/bench-store" --shards 4 --users 16 \
  --seed "$SEED" --listen 0 --port-file "$WORK/bench.port" --stay &
DAEMON=$!
PIDS+=("$DAEMON")
DPORT=$(wait_port "$WORK/bench.port")

"$CLI" bench-net --connect "127.0.0.1:$DPORT" --users 16 \
  --conns 1,4,16 --ops 200 --seed "$SEED" --out BENCH_net.json

kill "$DAEMON" 2>/dev/null || true
wait "$DAEMON" 2>/dev/null || true

grep -q '"throughput_ops_s"' BENCH_net.json
echo "== net smoke passed =="
