(* Whole-repo call graph for the interprocedural lint tier.

   The graph is built from the parsetrees alone (compiler-libs, no
   typing), so resolution is a deliberate over-approximation governed
   by one contract, stated here and tested in test_lint.ml:

   - every top-level (or submodule-top-level) value binding of a file
     is a {e def}; everything nested inside it — local functions,
     lambdas passed to iterators, `let rec ... in` loops — collapses
     into the enclosing def, so an edge out of any nested code is an
     edge out of the def;
   - a reference resolved through a module alias (`module M = Other`)
     or through the library layout (`Tcvs.Harness.run`,
     `Store.Shard_db.create`) produces an edge with [Aliased]
     provenance; an alias created by a functor application
     (`module M = F(X)`) routes `M.f` to `F.f` with [Functor_app]
     provenance — the functor body is analysed once, for all
     applications, which over-approximates instantiation-specific
     behaviour;
   - an identifier that names a known def but does {e not} appear in
     call-head position (it is passed to an iterator, stored in a
     record, returned) still produces an edge, with [First_class]
     provenance: whoever receives the value may call it, so the
     enclosing def is charged with the call. This is the
     over-approximation that makes reachability sound for first-class
     functions without data-flow analysis;
   - references the resolver cannot attribute to a def in the scanned
     file set (stdlib, external libraries, record fields) are kept as
     {e extern facts} on the def — the reachability rules classify
     those (blocking primitives, allocators) by name.

   Top-level side-effecting bindings (`let () = ...`, plain-pattern
   bindings) aggregate into one `(init)` pseudo-def per module, so
   module-initialisation edges exist but are only reachable if a rule
   roots them explicitly. *)

open Parsetree

type provenance = Direct | Aliased | Functor_app | First_class

let provenance_label = function
  | Direct -> "direct"
  | Aliased -> "aliased"
  | Functor_app -> "functor"
  | First_class -> "first-class"

(* Strength order for deduplication: when several references connect
   the same pair of defs, the strongest (most concrete) provenance is
   kept for diagnostics. *)
let provenance_rank = function
  | Direct -> 0
  | Aliased -> 1
  | Functor_app -> 2
  | First_class -> 3

type edge = { e_target : string; e_prov : provenance; e_loc : Location.t }

(* Allocation facts are aggregated per def and kind: one finding per
   (def, kind) keeps the baseline stable while the count and first
   location keep the diagnostic concrete. *)
type alloc_kind = Closure | List_cons

let alloc_kind_label = function Closure -> "closure" | List_cons -> "list-cons"

type def = {
  d_id : string; (* "Daemon.handle_frame", "Obs.Journal.event" *)
  d_file : string; (* repo-relative path *)
  d_loc : Location.t;
  (* Function defs (the binding carries syntactic parameters) run per
     call; value defs run once, at module initialisation, so per-call
     reachability must not traverse or scan them. Point-free function
     definitions (`let f = List.map g`) are misclassified as value defs
     — the one stated under-approximation of the contract. *)
  mutable d_is_fun : bool;
  mutable d_edges : edge list;
  mutable d_extern : (string * Location.t) list; (* unresolved refs, newest first *)
  mutable d_closures : int;
  mutable d_closure_loc : Location.t option;
  mutable d_cons : int;
  mutable d_cons_loc : Location.t option;
  mutable d_allows : string list; (* [@tcvs.lint.allow] ids in force at the binding *)
  mutable d_roots : string list; (* [@tcvs.lint.root "tag"] markers *)
}

type mutable_site = {
  m_file : string;
  m_id : string; (* "Obs.slots" *)
  m_loc : Location.t;
  m_kind : string; (* "ref", "Hashtbl.create", "record with mutable fields", ... *)
  m_allows : string list;
}

type t = {
  defs : (string, def) Hashtbl.t;
  mutable mutables : mutable_site list;
  by_file : (string, string list ref) Hashtbl.t; (* file -> def ids *)
}

(* ---- Longident helpers ---------------------------------------------- *)

let rec lid_head = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, _) -> lid_head l
  | Longident.Lapply (l, _) -> lid_head l

let lid_components lid =
  match Longident.flatten lid with
  | components -> components
  | exception _ -> [ lid_head lid ]

(* ---- Attributes ------------------------------------------------------ *)

let string_payload (attr : attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let ids_of_attr name (attr : attribute) =
  if not (String.equal attr.attr_name.txt name) then []
  else
    match string_payload attr with
    | Some s -> String.split_on_char ' ' s |> List.filter (fun id -> id <> "")
    | None -> []

let allows_of_attrs attrs = List.concat_map (ids_of_attr "tcvs.lint.allow") attrs
let roots_of_attrs attrs = List.concat_map (ids_of_attr "tcvs.lint.root") attrs

(* ---- The per-file environment ---------------------------------------- *)

(* Bare identifiers are mostly local variables; recording them all
   would drown the graph. The reachability rules only care about the
   allocator and channel primitives below, so unresolved bare
   references are kept iff watched. Qualified references are always
   kept (their module prefix makes them cheap to classify). *)
let watched_bare =
  [
    "ref";
    "^";
    "@";
    "output_string";
    "output_bytes";
    "output_char";
    "output_byte";
    "output_value";
    "flush";
    "input_line";
    "input_byte";
    "input_char";
    "really_input";
    "really_input_string";
  ]

type alias = { a_name : string; a_target : string list; a_functor : bool }

type file_env = {
  f_file : string;
  f_mod : string; (* capitalized basename: "Daemon" *)
  mutable f_aliases : alias list; (* all scopes, flattened *)
  mutable f_opens : string list list;
  mutable f_mutable_fields : string list; (* field names declared mutable *)
  f_structure : structure;
}

let module_name_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let def_id env path name = String.concat "." ((env.f_mod :: path) @ [ name ])

(* ---- Pass 1: defs, aliases, opens, mutable toplevel state ------------ *)

let allocator_heads =
  [
    ("ref", "ref");
    ("Hashtbl.create", "Hashtbl.create");
    ("Queue.create", "Queue.create");
    ("Stack.create", "Stack.create");
    ("Buffer.create", "Buffer.create");
    ("Bytes.create", "Bytes.create");
    ("Bytes.make", "Bytes.make");
    ("Array.make", "Array.make");
    ("Array.init", "Array.init");
    ("Array.create_float", "Array.create_float");
  ]

(* Is [expr] (a toplevel binding's RHS) shared mutable state? Searches
   outside lambdas only: a function that allocates per call creates
   per-call state, not shared state. Mutex/Atomic/Domain.DLS values are
   domain-safe by construction and exempt. *)
let rec mutable_kind_of mutable_fields expr =
  match expr.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> None
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> mutable_kind_of mutable_fields e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      let name = String.concat "." (lid_components txt) in
      match List.assoc_opt name allocator_heads with
      | Some kind -> Some kind
      | None ->
          List.find_map (fun (_, a) -> mutable_kind_of mutable_fields a) args)
  | Pexp_record (fields, _) ->
      if
        List.exists
          (fun ((lid : Longident.t Asttypes.loc), _) ->
            match List.rev (lid_components lid.txt) with
            | f :: _ -> List.exists (String.equal f) mutable_fields
            | [] -> false)
          fields
      then Some "record with mutable fields"
      else
        List.find_map (fun (_, e) -> mutable_kind_of mutable_fields e) fields
  | Pexp_array _ -> Some "array literal"
  | Pexp_tuple es -> List.find_map (mutable_kind_of mutable_fields) es
  | Pexp_let (_, _, e) | Pexp_sequence (_, e) -> mutable_kind_of mutable_fields e
  | _ -> None

let rec binding_names pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (p, { txt; _ }) -> txt :: binding_names p
  | Ppat_tuple ps -> List.concat_map binding_names ps
  | Ppat_constraint (p, _) -> binding_names p
  | Ppat_construct (_, Some (_, p)) -> binding_names p
  | Ppat_record (fields, _) -> List.concat_map (fun (_, p) -> binding_names p) fields
  | _ -> []

let collect_pass1 graph env =
  let add_def ?(allows = []) ?(roots = []) path name loc =
    let id = def_id env path name in
    if not (Hashtbl.mem graph.defs id) then begin
      let def =
        {
          d_id = id;
          d_file = env.f_file;
          d_loc = loc;
          d_is_fun = false;
          d_edges = [];
          d_extern = [];
          d_closures = 0;
          d_closure_loc = None;
          d_cons = 0;
          d_cons_loc = None;
          d_allows = allows;
          d_roots = roots;
        }
      in
      Hashtbl.replace graph.defs id def;
      let ids =
        match Hashtbl.find_opt graph.by_file env.f_file with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.replace graph.by_file env.f_file r;
            r
      in
      ids := id :: !ids
    end
    else begin
      (* merged pseudo-def ((init)): accumulate attributes *)
      let def = Hashtbl.find graph.defs id in
      def.d_allows <- allows @ def.d_allows;
      def.d_roots <- roots @ def.d_roots
    end
  in
  let rec structure path ~floating_allows items =
    ignore
      (List.fold_left
         (fun floating item -> structure_item path ~floating_allows:floating item)
         floating_allows items)
  and structure_item path ~floating_allows item =
    match item.pstr_desc with
    | Pstr_attribute attr ->
        (* floating [@@@tcvs.lint.allow]: applies to the rest of the file *)
        ids_of_attr "tcvs.lint.allow" attr @ floating_allows
    | Pstr_value (_, bindings) ->
        List.iter
          (fun vb ->
            let allows = allows_of_attrs vb.pvb_attributes @ floating_allows in
            let roots = roots_of_attrs vb.pvb_attributes in
            (match binding_names vb.pvb_pat with
            | [] -> add_def ~allows ~roots path "(init)" vb.pvb_loc
            | names ->
                List.iter (fun n -> add_def ~allows ~roots path n vb.pvb_loc) names);
            (* shared mutable state at module toplevel *)
            match mutable_kind_of env.f_mutable_fields vb.pvb_expr with
            | Some kind ->
                let name =
                  match binding_names vb.pvb_pat with n :: _ -> n | [] -> "(init)"
                in
                graph.mutables <-
                  {
                    m_file = env.f_file;
                    m_id = def_id env path name;
                    m_loc = vb.pvb_loc;
                    m_kind = kind;
                    m_allows = allows;
                  }
                  :: graph.mutables
            | None -> ())
          bindings;
        floating_allows
    | Pstr_type (_, decls) ->
        List.iter
          (fun decl ->
            match decl.ptype_kind with
            | Ptype_record labels ->
                List.iter
                  (fun lbl ->
                    if lbl.pld_mutable = Asttypes.Mutable then
                      env.f_mutable_fields <- lbl.pld_name.txt :: env.f_mutable_fields)
                  labels
            | _ -> ())
          decls;
        floating_allows
    | Pstr_module mb ->
        (match mb.pmb_name.txt with
        | None -> ()
        | Some name -> module_expr path name mb.pmb_expr);
        floating_allows
    | Pstr_recmodule mbs ->
        List.iter
          (fun mb ->
            match mb.pmb_name.txt with
            | None -> ()
            | Some name -> module_expr path name mb.pmb_expr)
          mbs;
        floating_allows
    | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ } ->
        env.f_opens <- lid_components txt :: env.f_opens;
        floating_allows
    | _ -> floating_allows
  and module_expr path name mexpr =
    match mexpr.pmod_desc with
    | Pmod_ident { txt; _ } ->
        env.f_aliases <-
          { a_name = name; a_target = lid_components txt; a_functor = false }
          :: env.f_aliases
    | Pmod_apply (f, _) -> (
        (* module M = F(X): route M.* to the functor body F.* *)
        let rec functor_head m =
          match m.pmod_desc with
          | Pmod_ident { txt; _ } -> Some (lid_components txt)
          | Pmod_apply (f, _) -> functor_head f
          | _ -> None
        in
        match functor_head f with
        | Some target ->
            env.f_aliases <-
              { a_name = name; a_target = target; a_functor = true } :: env.f_aliases
        | None -> ())
    | Pmod_structure items -> structure (path @ [ name ]) ~floating_allows:[] items
    | Pmod_constraint (inner, _) -> module_expr path name inner
    | Pmod_functor (_, body) ->
        (* functor body: defs live under the functor's name; every
           application aliases back here *)
        module_expr path name body
    | _ -> ()
  in
  structure [] ~floating_allows:[] env.f_structure

(* ---- Pass 2: reference resolution ------------------------------------ *)

type universe = {
  graph : t;
  envs : (string, file_env) Hashtbl.t; (* module name -> env *)
  libraries : (string * string) list; (* dir -> library name *)
}

let env_for_module u name = Hashtbl.find_opt u.envs name

let library_dir u name =
  List.find_map
    (fun (dir, lib) ->
      if String.equal (String.capitalize_ascii lib) name then Some dir else None)
    u.libraries

let dir_of_file file = Filename.dirname file

(* Resolve [comps] from [env]'s scope (current submodule [path]) to a
   def id. Returns the id plus whether an alias / functor alias was
   crossed. Depth-limited: alias chains in real code are short. *)
(* Identity re-exports (`module Shard_db = Shard_db` in store.ml) name
   the like-named compilation unit, not the alias itself: routing them
   back through the alias table would loop forever. *)
let identity_alias alias =
  match alias.a_target with
  | [ t ] -> String.equal t alias.a_name
  | _ -> false

let rec resolve u env path comps ~depth =
  if depth > 6 then None
  else
    match comps with
    | [] -> None
    | _ -> (
        (* innermost submodule scope outward: finds plain defs and defs
           inside this file's submodules / functor bodies *)
        let rec try_scope p =
          let id = String.concat "." ((env.f_mod :: p) @ comps) in
          if Hashtbl.mem u.graph.defs id then Some (id, `Plain)
          else
            match List.rev p with
            | [] -> None
            | _ :: outer -> try_scope (List.rev outer)
        in
        let via_alias () =
          match comps with
          | head :: rest -> (
              match
                List.find_opt (fun a -> String.equal a.a_name head) env.f_aliases
              with
              | Some alias when not (identity_alias alias) -> (
                  match
                    resolve u env path (alias.a_target @ rest) ~depth:(depth + 1)
                  with
                  | Some (id, _) -> Some (id, if alias.a_functor then `Functor else `Alias)
                  | None -> None)
              | Some _ | None -> None)
          | [] -> None
        in
        let via_unit () =
          match comps with
          | head :: rest -> (
              match env_for_module u head with
              | Some tenv ->
                  (* head names a scanned file: resolve the rest inside it *)
                  resolve_in_file u tenv rest ~depth
              | None -> (
                  (* head may be a library wrapper: Tcvs.Harness.run *)
                  match library_dir u head with
                  | None -> None
                  | Some dir -> (
                      match rest with
                      | [] -> None
                      | m :: rest' -> (
                          match env_for_module u m with
                          | Some tenv when String.equal (dir_of_file tenv.f_file) dir ->
                              let r = resolve_in_file u tenv rest' ~depth in
                              (match r with
                              | Some (id, `Plain) -> Some (id, `Alias)
                              | r -> r)
                          | _ -> None))))
          | [] -> None
        in
        let via_opens () =
          match comps with
          | [ _ ] ->
              List.find_map
                (fun o -> resolve u env path (o @ comps) ~depth:(depth + 1))
                env.f_opens
          | _ -> None
        in
        match via_alias () with
        | Some r -> Some r
        | None -> (
            match try_scope path with
            | Some r -> Some r
            | None -> (
                match via_unit () with Some r -> Some r | None -> via_opens ())))

and resolve_in_file u tenv comps ~depth =
  if depth > 6 then None
  else
    match comps with
    | [] -> None
    | _ -> (
        let id = String.concat "." (tenv.f_mod :: comps) in
        if Hashtbl.mem u.graph.defs id then Some (id, `Plain)
        else
          (* the head may be an alias inside the target file
             (Store.Shard_db.create with `module Shard_db = Shard_db`) *)
          match comps with
          | head :: rest when rest <> [] -> (
              match
                List.find_opt (fun a -> String.equal a.a_name head) tenv.f_aliases
              with
              | Some alias when identity_alias alias -> (
                  (* re-exported compilation unit *)
                  match env_for_module u head with
                  | Some tenv' when tenv' != tenv -> (
                      match resolve_in_file u tenv' rest ~depth:(depth + 1) with
                      | Some (id, _) ->
                          Some (id, if alias.a_functor then `Functor else `Alias)
                      | None -> None)
                  | _ -> None)
              | Some alias -> (
                  match
                    resolve u tenv [] (alias.a_target @ rest) ~depth:(depth + 1)
                  with
                  | Some (id, _) ->
                      Some (id, if alias.a_functor then `Functor else `Alias)
                  | None -> None)
              | None -> None)
          | _ -> None)

let add_edge def target prov loc =
  match List.find_opt (fun e -> String.equal e.e_target target) def.d_edges with
  | Some e when provenance_rank e.e_prov <= provenance_rank prov -> ()
  | Some e ->
      def.d_edges <-
        { e_target = target; e_prov = prov; e_loc = loc }
        :: List.filter (fun e' -> e' != e) def.d_edges
  | None -> def.d_edges <- { e_target = target; e_prov = prov; e_loc = loc } :: def.d_edges

let record_ref u env path def ~head txt loc =
  let comps = lid_components txt in
  match resolve u env path comps ~depth:0 with
  | Some (target, via) ->
      if not (String.equal target def.d_id) then
        let prov =
          if not head then First_class
          else
            match via with
            | `Plain -> Direct
            | `Alias -> Aliased
            | `Functor -> Functor_app
        in
        add_edge def target prov loc
  | None ->
      let name = String.concat "." comps in
      if List.length comps >= 2 || List.exists (String.equal name) watched_bare then
        def.d_extern <- (name, loc) :: def.d_extern

let collect_pass2 u env =
  let graph = u.graph in
  let find_def path name = Hashtbl.find_opt graph.defs (def_id env path name) in
  (* expression walker: [def] is the charged def, [head] marks the
     callee position of an application *)
  let rec expr path def e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> record_ref u env path def ~head:false txt e.pexp_loc
    | Pexp_apply (f, args) ->
        (match f.pexp_desc with
        | Pexp_ident { txt; _ } -> record_ref u env path def ~head:true txt f.pexp_loc
        | _ -> expr path def f);
        List.iter (fun (_, a) -> expr path def a) args
    | Pexp_fun (_, default, _, body) ->
        def.d_closures <- def.d_closures + 1;
        if def.d_closure_loc = None then def.d_closure_loc <- Some e.pexp_loc;
        Option.iter (expr path def) default;
        expr path def body
    | Pexp_function cases ->
        def.d_closures <- def.d_closures + 1;
        if def.d_closure_loc = None then def.d_closure_loc <- Some e.pexp_loc;
        List.iter (case path def) cases
    | Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some arg) ->
        def.d_cons <- def.d_cons + 1;
        if def.d_cons_loc = None then def.d_cons_loc <- Some e.pexp_loc;
        expr path def arg
    | Pexp_construct (_, arg) -> Option.iter (expr path def) arg
    | Pexp_variant (_, arg) -> Option.iter (expr path def) arg
    | Pexp_let (_, bindings, body) ->
        List.iter (fun vb -> binding_body path def vb.pvb_expr) bindings;
        expr path def body
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        expr path def scrut;
        List.iter (case path def) cases
    | Pexp_tuple es -> List.iter (expr path def) es
    | Pexp_record (fields, base) ->
        List.iter (fun (_, e) -> expr path def e) fields;
        Option.iter (expr path def) base
    | Pexp_field (e, _) -> expr path def e
    | Pexp_setfield (a, _, b) ->
        expr path def a;
        expr path def b
    | Pexp_array es -> List.iter (expr path def) es
    | Pexp_ifthenelse (c, t, e') ->
        expr path def c;
        expr path def t;
        Option.iter (expr path def) e'
    | Pexp_sequence (a, b) ->
        expr path def a;
        expr path def b
    | Pexp_while (c, body) ->
        expr path def c;
        expr path def body
    | Pexp_for (_, lo, hi, _, body) ->
        expr path def lo;
        expr path def hi;
        expr path def body
    | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> expr path def e
    | Pexp_lazy e | Pexp_assert e | Pexp_newtype (_, e) | Pexp_open (_, e) ->
        expr path def e
    | Pexp_send (e, _) -> expr path def e
    | Pexp_setinstvar (_, e) -> expr path def e
    | Pexp_letmodule (_, mexpr, body) ->
        module_in_expr path def mexpr;
        expr path def body
    | Pexp_letexception (_, body) -> expr path def body
    | Pexp_override fields -> List.iter (fun (_, e) -> expr path def e) fields
    | Pexp_letop { let_; ands; body } ->
        expr path def let_.pbop_exp;
        List.iter (fun a -> expr path def a.pbop_exp) ands;
        expr path def body
    | _ -> ()
  and case path def c =
    Option.iter (expr path def) c.pc_guard;
    expr path def c.pc_rhs
  and module_in_expr path def mexpr =
    match mexpr.pmod_desc with
    | Pmod_structure items ->
        List.iter
          (fun item ->
            match item.pstr_desc with
            | Pstr_value (_, bindings) ->
                List.iter (fun vb -> binding_body path def vb.pvb_expr) bindings
            | _ -> ())
          items
    | _ -> ()
  (* peel the binding's own lambda chain: `let f x y = body` allocates
     no closure when applied fully *)
  and binding_body path def e =
    match e.pexp_desc with
    | Pexp_fun (_, default, _, body) ->
        Option.iter (expr path def) default;
        binding_body path def body
    | Pexp_newtype (_, body) | Pexp_constraint (body, _) -> binding_body path def body
    | Pexp_function cases -> List.iter (case path def) cases
    | _ -> expr path def e
  in
  let rec is_function e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> true
    | Pexp_newtype (_, body) | Pexp_constraint (body, _) -> is_function body
    | _ -> false
  in
  let rec structure path items = List.iter (structure_item path) items
  and structure_item path item =
    match item.pstr_desc with
    | Pstr_value (_, bindings) ->
        List.iter
          (fun vb ->
            let def =
              match binding_names vb.pvb_pat with
              | name :: _ -> find_def path name
              | [] -> find_def path "(init)"
            in
            match def with
            | Some def ->
                if is_function vb.pvb_expr then def.d_is_fun <- true;
                binding_body path def vb.pvb_expr
            | None -> ())
          bindings
    | Pstr_module mb -> (
        match mb.pmb_name.txt with
        | None -> ()
        | Some name -> module_expr path name mb.pmb_expr)
    | Pstr_recmodule mbs ->
        List.iter
          (fun mb ->
            match mb.pmb_name.txt with
            | None -> ()
            | Some name -> module_expr path name mb.pmb_expr)
          mbs
    | _ -> ()
  and module_expr path name mexpr =
    match mexpr.pmod_desc with
    | Pmod_structure items -> structure (path @ [ name ]) items
    | Pmod_constraint (inner, _) -> module_expr path name inner
    | Pmod_functor (_, body) -> module_expr path name body
    | _ -> ()
  in
  structure [] env.f_structure

(* ---- Build ----------------------------------------------------------- *)

let build ?(libraries = []) files =
  let graph = { defs = Hashtbl.create 512; mutables = []; by_file = Hashtbl.create 64 } in
  let envs = Hashtbl.create 64 in
  List.iter
    (fun (file, str) ->
      let env =
        {
          f_file = file;
          f_mod = module_name_of_file file;
          f_aliases = [];
          f_opens = [];
          f_mutable_fields = [];
          f_structure = str;
        }
      in
      Hashtbl.replace envs env.f_mod env)
    files;
  Hashtbl.iter (fun _ env -> collect_pass1 graph env) envs;
  let u = { graph; envs; libraries } in
  Hashtbl.iter (fun _ env -> collect_pass2 u env) envs;
  graph

let parse_string ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  Parse.implementation lexbuf

let build_from_sources ?libraries sources =
  build ?libraries
    (List.map (fun (file, source) -> (file, parse_string ~file source)) sources)

(* ---- Queries --------------------------------------------------------- *)

let find_def graph id = Hashtbl.find_opt graph.defs id

let defs_with_root graph tag =
  Hashtbl.fold
    (fun _ def acc ->
      if List.exists (String.equal tag) def.d_roots then def :: acc else acc)
    graph.defs []
  |> List.sort (fun a b -> String.compare a.d_id b.d_id)

let defs_in_file graph file =
  match Hashtbl.find_opt graph.by_file file with Some r -> !r | None -> []

(* BFS; the result maps every reached def to its parent hop, for path
   reconstruction. Roots map to themselves. Deterministic: the worklist
   is processed in sorted insertion order and edges are visited
   sorted. *)
let reachable graph ~roots =
  let parent : (string, (string * provenance) option) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  List.iter
    (fun r ->
      if Hashtbl.mem graph.defs r && not (Hashtbl.mem parent r) then begin
        Hashtbl.replace parent r None;
        Queue.add r queue
      end)
    (List.sort String.compare roots);
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    let def = Hashtbl.find graph.defs id in
    (* value defs ran at module init: reaching the value does not run
       its body, so its out-edges do not propagate — except for roots,
       which the caller asserts are executed *)
    if def.d_is_fun || Hashtbl.find parent id = None then
      List.sort (fun a b -> String.compare a.e_target b.e_target) def.d_edges
      |> List.iter (fun e ->
             if not (Hashtbl.mem parent e.e_target) then begin
               Hashtbl.replace parent e.e_target (Some (id, e.e_prov));
               Queue.add e.e_target queue
             end)
  done;
  parent

let is_reached reached id = Hashtbl.mem reached id

(* "Root ←[direct] A ←[first-class] B" rendered forward:
   "Root →[direct] A →[first-class] B" *)
let path_to reached id =
  let rec climb acc id =
    match Hashtbl.find_opt reached id with
    | None | Some None -> id :: acc
    | Some (Some (parent, prov)) ->
        climb ((Printf.sprintf "→[%s] %s" (provenance_label prov) id) :: acc) parent
  in
  match climb [] id with
  | [] -> id
  | segs -> String.concat " " segs
