(* Configuration for tcvs-lint: the `.tcvs-lint` file at the repo root.

   Line-oriented, `#` comments. Three directives:

     rule <id> off            disable a rule everywhere
     rule <id> on             re-enable a rule (the default)
     scope <id> <dir>...      replace the directories a rule audits
     allow <id> <path>        suppress a rule in one file (or under a
                              directory prefix)

   Finer-grained suppressions belong in the source itself, as
   [@tcvs.lint.allow "<id>"] attributes — those carry their
   justification next to the code they excuse. *)

type t = {
  disabled : string list;
  scopes : (string * string list) list;
  allows : (string * string) list; (* (rule id, path prefix) *)
}

let empty = { disabled = []; scopes = []; allows = [] }

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_line config ~line_no line =
  match tokens line with
  | [] -> Ok config
  | tok :: _ when String.length tok > 0 && tok.[0] = '#' -> Ok config
  | [ "rule"; id; "off" ] -> Ok { config with disabled = id :: config.disabled }
  | [ "rule"; id; "on" ] ->
      Ok { config with disabled = List.filter (fun d -> not (String.equal d id)) config.disabled }
  | "scope" :: id :: (_ :: _ as dirs) -> Ok { config with scopes = (id, dirs) :: config.scopes }
  | [ "allow"; id; path ] -> Ok { config with allows = (id, path) :: config.allows }
  | _ -> Error (Printf.sprintf "line %d: cannot parse %S" line_no line)

let parse_string source =
  let lines = String.split_on_char '\n' source in
  let rec go config line_no = function
    | [] -> Ok config
    | line :: rest -> (
        match parse_line config ~line_no line with
        | Ok config -> go config (line_no + 1) rest
        | Error _ as e -> e)
  in
  go empty 1 lines

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let source = really_input_string ic n in
  close_in ic;
  match parse_string source with
  | Ok config -> Ok config
  | Error m -> Error (Printf.sprintf "%s: %s" path m)

let rule_disabled config id = List.exists (String.equal id) config.disabled

let scope_override config id =
  List.find_map
    (fun (rule, dirs) -> if String.equal rule id then Some dirs else None)
    config.scopes

let path_has_prefix ~prefix path =
  String.equal prefix path
  || String.starts_with ~prefix:(prefix ^ "/") path

let allowed_by_config config id path =
  List.exists
    (fun (rule, prefix) -> String.equal rule id && path_has_prefix ~prefix path)
    config.allows
