(* The tcvs-lint engine: parse one .ml file with the compiler's own
   parser (compiler-libs, no external dependency) and fold a set of
   syntactic rules over the Parsetree with an {!Ast_iterator}.

   The engine knows nothing about individual rules beyond their
   interface: a rule declares the directory prefixes it audits and two
   hooks, one per expression and one per try/match case. Suppression
   works at three levels, from coarse to surgical:

   - `.tcvs-lint` `rule <id> off` — rule disabled everywhere;
   - `.tcvs-lint` `allow <id> <path>` — rule suppressed in one file;
   - `[@tcvs.lint.allow "<id>"]` — attribute on the precise expression,
     value binding or structure item being excused ( [@@...] / [@@@...]
     for items and whole files), which is the preferred form because
     the justification lives next to the code. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule_id : string;
  message : string;
}

type ctx = {
  file : string;
  mutable findings : finding list;
  mutable allowed : string list; (* attribute-scoped suppressions, innermost last *)
}

type rule = {
  id : string;
  summary : string; (* one line, for --list-rules and the catalogue *)
  default_scope : string list; (* directory prefixes this rule audits *)
  on_expr : (ctx -> Parsetree.expression -> unit) option;
  on_case : (ctx -> Parsetree.case -> unit) option;
}

let report ctx rule_id (loc : Location.t) message =
  if not (List.exists (String.equal rule_id) ctx.allowed) then
    ctx.findings <-
      {
        file = ctx.file;
        line = loc.loc_start.pos_lnum;
        col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        rule_id;
        message;
      }
      :: ctx.findings

(* ---- Allow attributes ---------------------------------------------- *)

let allow_attribute_name = "tcvs.lint.allow"

(* [@tcvs.lint.allow "rule-id"] or [@tcvs.lint.allow "id1 id2"]. *)
let allows_of_attribute (attr : Parsetree.attribute) =
  if not (String.equal attr.attr_name.txt allow_attribute_name) then []
  else begin
    match attr.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
        String.split_on_char ' ' s |> List.filter (fun id -> id <> "")
    | _ -> []
  end

let allows_of_attributes attrs = List.concat_map allows_of_attribute attrs

(* ---- Traversal ------------------------------------------------------ *)

let run_structure ~file ~rules structure =
  let ctx = { file; findings = []; allowed = [] } in
  let with_allows attrs f =
    match allows_of_attributes attrs with
    | [] -> f ()
    | ids ->
        let saved = ctx.allowed in
        ctx.allowed <- ids @ saved;
        f ();
        ctx.allowed <- saved
  in
  let default = Ast_iterator.default_iterator in
  let iterator =
    {
      default with
      expr =
        (fun self e ->
          with_allows e.pexp_attributes (fun () ->
              List.iter
                (fun rule ->
                  match rule.on_expr with Some hook -> hook ctx e | None -> ())
                rules;
              default.expr self e));
      case =
        (fun self c ->
          List.iter
            (fun rule -> match rule.on_case with Some hook -> hook ctx c | None -> ())
            rules;
          default.case self c);
      value_binding =
        (fun self vb ->
          with_allows vb.pvb_attributes (fun () -> default.value_binding self vb));
      structure_item =
        (fun self item ->
          match item.pstr_desc with
          | Pstr_attribute attr ->
              (* Floating [@@@tcvs.lint.allow "..."]: applies to the rest
                 of the file (attributes at the top are file-wide). *)
              ctx.allowed <- allows_of_attribute attr @ ctx.allowed
          | _ -> default.structure_item self item);
    }
  in
  iterator.structure iterator structure;
  List.rev ctx.findings

(* ---- Entry points --------------------------------------------------- *)

let applicable_rules ~(config : Lint_config.t) ~file rules =
  List.filter
    (fun rule ->
      (not (Lint_config.rule_disabled config rule.id))
      && (not (Lint_config.allowed_by_config config rule.id file))
      &&
      let scope =
        match Lint_config.scope_override config rule.id with
        | Some dirs -> dirs
        | None -> rule.default_scope
      in
      List.exists (fun dir -> Lint_config.path_has_prefix ~prefix:dir file) scope)
    rules

let parse_error_finding ~file (loc : Location.t) =
  {
    file;
    line = loc.loc_start.pos_lnum;
    col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
    rule_id = "parse-error";
    message = "file does not parse; tcvs-lint cannot audit it";
  }

let lint_lexbuf ~config ~rules ~file lexbuf =
  match applicable_rules ~config ~file rules with
  | [] -> []
  | rules -> (
      match Parse.implementation lexbuf with
      | structure -> run_structure ~file ~rules structure
      | exception Syntaxerr.Error err ->
          [ parse_error_finding ~file (Syntaxerr.location_of_error err) ])

let lint_string ~config ~rules ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  lint_lexbuf ~config ~rules ~file lexbuf

(* [?file] is the repo-relative label used for scoping and reporting;
   [path] is where the bytes live (they differ under dune's sandbox). *)
let lint_file ~config ~rules ?file path =
  let file = match file with Some f -> f | None -> path in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let source = really_input_string ic n in
  close_in ic;
  lint_string ~config ~rules ~file source

let pp_finding fmt (f : finding) =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule_id f.message

let to_string f = Format.asprintf "%a" pp_finding f

let sort findings =
  List.sort
    (fun (a : finding) (b : finding) ->
      match String.compare a.file b.file with
      | 0 -> (
          match Int.compare a.line b.line with
          | 0 -> Int.compare a.col b.col
          | c -> c)
      | c -> c)
    findings
