(* The repo-specific rule set. Each rule is purely syntactic (it runs
   on the Parsetree, before any typing), so the checks are heuristic by
   design: they over-approximate slightly and rely on the allowlist
   attribute for the rare justified exception. The invariants they pin
   are the ones the paper's Theorems 4.1–4.3 silently assume:

   - digest-safety   digests are compared exactly (String.equal /
                     Ctime.equal), never with polymorphic =, compare,
                     Hashtbl.hash or List.mem;
   - determinism     the simulator and registry stay seed-reproducible:
                     no wall clocks, OS randomness, or order-dependent
                     Hashtbl traversal in deterministic paths;
   - logging         library code reports through Logs (Log_setup),
                     not stdout;
   - no-catchall     protocol code never swallows an arbitrary
                     exception: a deviation signal must reach the
                     alarm path. *)

open Parsetree

(* ---- Longident helpers ---------------------------------------------- *)

let rec lid_head = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, _) -> lid_head l
  | Longident.Lapply (l, _) -> lid_head l

let lid_components lid =
  match Longident.flatten lid with
  | components -> components
  | exception _ -> [ lid_head lid ]

let lid_string lid = String.concat "." (lid_components lid)

(* ---- digest-safety --------------------------------------------------- *)

let digest_safety_id = "digest-safety"
let digest_scope = [ "lib/crypto"; "lib/mtree"; "lib/pki"; "lib/hashsig"; "lib/core" ]
let poly_eq_ops = [ "="; "<>"; "=="; "!=" ]

let banned_polymorphic =
  [
    ("Stdlib.compare", "use String.compare / Int.compare on the concrete type");
    ("compare", "use String.compare / Int.compare on the concrete type");
    ("Hashtbl.hash", "polymorphic hashing of digest-bearing values");
    ("List.mem", "use List.exists with an explicit equality");
    ("List.assoc", "use an explicit lookup with explicit equality");
    ("List.mem_assoc", "use List.exists with an explicit equality");
  ]

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  nn = 0
  ||
  let rec go i =
    i + nn <= nh && (String.equal (String.sub haystack i nn) needle || go (i + 1))
  in
  go 0

(* Identifier names that suggest a value is (or contains) a digest,
   register or signature — the values Theorems 4.1–4.3 need compared
   exactly. Deliberately broad; allowlist the false positives. *)
let suggestive_fragments = [ "digest"; "sigma"; "root"; "tag"; "sig"; "hmac" ]
let suggestive_exact = [ "last"; "mac" ]

let suggestive_name name =
  let name = String.lowercase_ascii name in
  (not (String.equal name "hashtbl"))
  && (List.exists (String.equal name) suggestive_exact
     || List.exists (fun frag -> contains ~needle:frag name) suggestive_fragments)

(* Does the operand mention any digest-suggestive identifier, module
   path component or record field? *)
let mentions_digest expr =
  let found = ref false in
  let mark lid = if List.exists suggestive_name (lid_components lid) then found := true in
  let default = Ast_iterator.default_iterator in
  let iterator =
    {
      default with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> mark txt
          | Pexp_field (_, { txt; _ }) | Pexp_setfield (_, { txt; _ }, _) -> mark txt
          | _ -> ());
          default.expr self e);
    }
  in
  iterator.expr iterator expr;
  !found

let arithmetic_heads =
  [ "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr"; "abs"; "succ"; "pred" ]

(* Operands that cannot be digests: constants, argument-less
   constructors (None, [], true, `Signed, ...), integer arithmetic and
   length/compare results. Comparing those polymorphically is fine. *)
let rec safe_operand expr =
  match expr.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_construct (_, None) -> true
  | Pexp_variant (_, None) -> true
  | Pexp_constraint (e, _) -> safe_operand e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match lid_components txt with
      | [ op ] -> List.exists (String.equal op) arithmetic_heads
      | components -> (
          match List.rev components with
          | last :: _ -> List.exists (String.equal last) [ "length"; "compare"; "code"; "size" ]
          | [] -> false))
  | _ -> false

let digest_safety =
  {
    Lint_engine.id = digest_safety_id;
    summary =
      "no polymorphic =/compare/Hashtbl.hash/List.mem on digest-bearing values; route \
       digest equality through Ctime.equal or String.equal";
    default_scope = digest_scope;
    on_case = None;
    on_expr =
      Some
        (fun ctx e ->
          match e.pexp_desc with
          | Pexp_apply
              ({ pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ }, [ (_, a); (_, b) ])
            when List.exists (String.equal op) poly_eq_ops ->
              if
                (not (safe_operand a || safe_operand b))
                && (mentions_digest a || mentions_digest b)
              then
                Lint_engine.report ctx digest_safety_id e.pexp_loc
                  (Printf.sprintf
                     "polymorphic (%s) on a digest-like value; use Ctime.equal (secret or \
                      attacker-timed digests) or String.equal"
                     op)
          | Pexp_ident { txt; _ } -> (
              let name = lid_string txt in
              match
                List.find_opt (fun (banned, _) -> String.equal banned name) banned_polymorphic
              with
              | Some (banned, hint) ->
                  Lint_engine.report ctx digest_safety_id e.pexp_loc
                    (Printf.sprintf "%s relies on polymorphic comparison; %s" banned hint)
              | None -> ())
          | _ -> ());
  }

(* ---- determinism ----------------------------------------------------- *)

let determinism_id = "determinism"
let determinism_scope = [ "lib/sim"; "lib/obs"; "lib/core" ]

let determinism =
  {
    Lint_engine.id = determinism_id;
    summary =
      "no Random.*, Sys.time, Unix.* or order-dependent Hashtbl.iter/fold in \
       seed-reproducible code (lib/sim, lib/obs, lib/core)";
    default_scope = determinism_scope;
    on_case = None;
    on_expr =
      Some
        (fun ctx e ->
          match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              let head = lid_head txt in
              let name = lid_string txt in
              if String.equal head "Random" then
                Lint_engine.report ctx determinism_id e.pexp_loc
                  "Random.* breaks seed reproducibility; use Crypto.Prng"
              else if String.equal head "Unix" then
                Lint_engine.report ctx determinism_id e.pexp_loc
                  "Unix.* (wall clock / OS state) in a deterministic path"
              else begin
                match name with
                | "Sys.time" ->
                    Lint_engine.report ctx determinism_id e.pexp_loc
                      "Sys.time is wall-clock; simulated time is the engine round"
                | "Hashtbl.iter" | "Hashtbl.fold" ->
                    Lint_engine.report ctx determinism_id e.pexp_loc
                      (Printf.sprintf
                         "%s visits bindings in unspecified order; sort the bindings (or \
                          allowlist if provably order-independent)"
                         name)
                | _ -> ()
              end)
          | _ -> ());
  }

(* ---- logging --------------------------------------------------------- *)

let logging_id = "logging"
let logging_scope = [ "lib" ]

let printing_idents =
  [
    "Printf.printf";
    "Printf.eprintf";
    "Format.printf";
    "Format.eprintf";
    "print_endline";
    "print_string";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "prerr_endline";
    "prerr_string";
    "prerr_newline";
  ]

let logging =
  {
    Lint_engine.id = logging_id;
    summary = "no direct stdout/stderr printing in lib/ (use Logs via Log_setup)";
    default_scope = logging_scope;
    on_case = None;
    on_expr =
      Some
        (fun ctx e ->
          match e.pexp_desc with
          | Pexp_ident { txt; _ } when List.exists (String.equal (lid_string txt)) printing_idents
            ->
              Lint_engine.report ctx logging_id e.pexp_loc
                (Printf.sprintf "%s prints directly from library code; use Logs (Log_setup)"
                   (lid_string txt))
          | _ -> ());
  }

(* ---- no-catchall ----------------------------------------------------- *)

let no_catchall_id = "no-catchall"
let catchall_scope = [ "lib/core" ]

let rec catch_all_pattern pat =
  match pat.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (inner, _) -> catch_all_pattern inner
  | Ppat_or (a, b) -> catch_all_pattern a || catch_all_pattern b
  | Ppat_exception inner -> catch_all_pattern inner
  | _ -> false

let guardless case = match case.pc_guard with None -> true | Some _ -> false

(* Two syntactic homes for a handler: `match ... with exception p -> ...`
   cases carry a Ppat_exception wrapper (caught by on_case), while
   `try ... with p -> ...` cases are bare patterns, so those are
   inspected at the enclosing Pexp_try (on_expr). *)
let no_catchall =
  {
    Lint_engine.id = no_catchall_id;
    summary =
      "no catch-all `try ... with _ ->` in protocol modules: a swallowed exception is a \
       swallowed deviation signal";
    default_scope = catchall_scope;
    on_case =
      Some
        (fun ctx case ->
          match case.pc_lhs.ppat_desc with
          | Ppat_exception inner when guardless case && catch_all_pattern inner ->
              Lint_engine.report ctx no_catchall_id case.pc_lhs.ppat_loc
                "catch-all exception case swallows protocol deviations; match the specific \
                 exception"
          | _ -> ());
    on_expr =
      Some
        (fun ctx e ->
          match e.pexp_desc with
          | Pexp_try (_, cases) ->
              List.iter
                (fun case ->
                  if guardless case && catch_all_pattern case.pc_lhs then
                    Lint_engine.report ctx no_catchall_id case.pc_lhs.ppat_loc
                      "catch-all `try ... with _ ->` swallows protocol deviations; match \
                       the specific exception")
                cases
          | _ -> ());
  }

(* ---- store-io -------------------------------------------------------- *)

let store_io_id = "store-io"

(* Every lib/ subtree except the two sanctioned writers: lib/store owns
   durability (WAL + snapshots, crash-safe framing), lib/obs owns
   report emission. Ad-hoc channel writes anywhere else bypass the
   checksummed, torn-tail-safe formats recovery depends on. *)
let store_io_scope =
  [
    "lib/bignum";
    "lib/core";
    "lib/crypto";
    "lib/hashsig";
    "lib/mtree";
    "lib/pki";
    "lib/rsa";
    "lib/sim";
    "lib/vcs";
    "lib/vdiff";
    "lib/wgraph";
    "lib/wire";
    "lib/workload";
  ]

let file_write_idents =
  [
    "open_out";
    "open_out_bin";
    "open_out_gen";
    "output_string";
    "output_bytes";
    "output_char";
    "output_byte";
    "output_value";
  ]

let store_io =
  {
    Lint_engine.id = store_io_id;
    summary =
      "no direct file writes outside lib/store (durability) and lib/obs (reports); \
       persistent state goes through Store's checksummed WAL/snapshot formats";
    default_scope = store_io_scope;
    on_case = None;
    on_expr =
      Some
        (fun ctx e ->
          match e.pexp_desc with
          | Pexp_ident { txt; _ } ->
              let bare =
                match lid_components txt with
                | [ name ] | [ "Stdlib"; name ] -> name
                | _ -> ""
              in
              if List.exists (String.equal bare) file_write_idents then
                Lint_engine.report ctx store_io_id e.pexp_loc
                  (Printf.sprintf
                     "%s writes a file outside lib/store; durable state belongs in Store \
                      (WAL/snapshot), reports in Obs"
                     bare)
          | _ -> ());
  }

(* ---- net-io ---------------------------------------------------------- *)

let net_io_id = "net-io"

(* Unix (sockets, fds, select, signals, wall clock) is the I/O surface
   the deterministic core must never see: lib/net owns sockets and the
   event loop, lib/store owns durable file descriptors, lib/obs owns
   report emission. A Unix call anywhere else either breaks seed
   reproducibility or smuggles in an unframed I/O path that the fault
   proxy and the crash adversaries cannot exercise. *)
let net_io_scope =
  [
    "lib/bignum";
    "lib/core";
    "lib/crypto";
    "lib/hashsig";
    "lib/mtree";
    "lib/pki";
    "lib/rsa";
    "lib/sim";
    "lib/vcs";
    "lib/vdiff";
    "lib/wgraph";
    "lib/wire";
    "lib/workload";
  ]

let net_io =
  {
    Lint_engine.id = net_io_id;
    summary =
      "no Unix socket/file primitives in lib/ outside lib/net (sockets), lib/store \
       (durability) and lib/obs (reports)";
    default_scope = net_io_scope;
    on_case = None;
    on_expr =
      Some
        (fun ctx e ->
          match e.pexp_desc with
          | Pexp_ident { txt; _ } when String.equal (lid_head txt) "Unix" ->
              Lint_engine.report ctx net_io_id e.pexp_loc
                (Printf.sprintf
                   "%s reaches the OS from pure library code; sockets belong in lib/net, \
                    durable fds in lib/store, report emission in lib/obs"
                   (lid_string txt))
          | _ -> ());
  }

(* ---- fsync-confinement ----------------------------------------------- *)

let fsync_confinement_id = "fsync-confinement"

(* Durability barriers are the group-commit scheduler's to place: one
   fsync per dirty stream per flush, sequenced against segment rolls,
   compaction publishes and checkpoint renames. An fsync anywhere else
   — including lib/net and lib/obs, which net-io sanctions for other
   Unix calls — either lies about durability (syncing a fd the store
   still has staged records for) or silently doubles the write-path
   cost the BENCH_store numbers pin. *)
let fsync_confinement_scope =
  net_io_scope @ [ "lib/net"; "lib/obs" ]

let fsync_idents = [ "Unix.fsync"; "Unix.fdatasync" ]

let fsync_confinement =
  {
    Lint_engine.id = fsync_confinement_id;
    summary =
      "Unix.fsync/fdatasync only inside lib/store: durability barriers belong to the \
       store's group-commit flush, nowhere else";
    default_scope = fsync_confinement_scope;
    on_case = None;
    on_expr =
      Some
        (fun ctx e ->
          match e.pexp_desc with
          | Pexp_ident { txt; _ }
            when List.exists (String.equal (lid_string txt)) fsync_idents ->
              Lint_engine.report ctx fsync_confinement_id e.pexp_loc
                (Printf.sprintf
                   "%s outside lib/store; durability barriers go through Store.flush \
                    (group commit), never ad-hoc syncs"
                   (lid_string txt))
          | _ -> ());
  }

(* ---- obs-scope-naming ------------------------------------------------ *)

let obs_scope_naming_id = "obs-scope-naming"

(* Everywhere metrics are registered. The telemetry plane joins
   per-process registries by full dotted name (reports, admin
   snapshots, `tcvs_cli top`), so the names must stay a predictable
   hierarchy: the scope carries the dots ("net.daemon",
   "store.group_commit"), the metric name is one lowercase segment
   ("dedup_hits"), and nothing registers at the root where it would
   collide across components. Purely syntactic: only literal strings
   are checked; computed names ("sent." ^ kind) and locally-opened
   scope algebra (Obs.Scope.(v "a" / b)) are skipped. *)
let obs_scope_naming_scope = [ "lib"; "bin"; "bench"; "examples"; "tools" ]

let scope_maker_idents = [ "Obs.Scope.v"; "Scope.v" ]
let metric_maker_idents = [ "Obs.counter"; "Obs.histogram"; "Obs.set_gauge" ]

let valid_segment s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false) s

let valid_scope_path s =
  String.length s > 0 && List.for_all valid_segment (String.split_on_char '.' s)

let literal_string expr =
  match expr.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

let obs_scope_naming =
  {
    Lint_engine.id = obs_scope_naming_id;
    summary =
      "metric namespaces follow component.sub.metric: Obs.Scope.v literals are dotted \
       lowercase paths, Obs.counter/histogram/set_gauge literal names are one lowercase \
       segment and carry an explicit ~scope";
    default_scope = obs_scope_naming_scope;
    on_case = None;
    on_expr =
      Some
        (fun ctx e ->
          match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
              let head = lid_string txt in
              if List.exists (String.equal head) scope_maker_idents then
                List.iter
                  (fun ((lbl : Asttypes.arg_label), arg) ->
                    match (lbl, literal_string arg) with
                    | Asttypes.Nolabel, Some s when not (valid_scope_path s) ->
                        Lint_engine.report ctx obs_scope_naming_id arg.pexp_loc
                          (Printf.sprintf
                             "scope %S is not a dotted lowercase path; each '.'-separated \
                              segment must match [a-z][a-z0-9_]*"
                             s)
                    | _ -> ())
                  args
              else if List.exists (String.equal head) metric_maker_idents then begin
                let has_scope =
                  List.exists
                    (fun ((lbl : Asttypes.arg_label), _) ->
                      match lbl with
                      | Asttypes.Labelled "scope" | Asttypes.Optional "scope" -> true
                      | _ -> false)
                    args
                in
                List.iter
                  (fun ((lbl : Asttypes.arg_label), arg) ->
                    match (lbl, literal_string arg) with
                    | Asttypes.Nolabel, Some name ->
                        if not (valid_segment name) then
                          Lint_engine.report ctx obs_scope_naming_id arg.pexp_loc
                            (Printf.sprintf
                               "metric name %S is not a single lowercase segment \
                                ([a-z][a-z0-9_]*); the hierarchy lives in the scope, not \
                                the name"
                               name);
                        if not has_scope then
                          Lint_engine.report ctx obs_scope_naming_id e.pexp_loc
                            (Printf.sprintf
                               "%s %S registers a root-level metric; pass ~scope so the \
                                name lands under its component's namespace"
                               head name)
                    | _ -> ())
                  args
              end
          | _ -> ());
  }

let all =
  [
    digest_safety;
    determinism;
    logging;
    no_catchall;
    store_io;
    net_io;
    fsync_confinement;
    obs_scope_naming;
  ]
