(* tcvs-lint — the repo's own static-analysis pass, plus the dynamic
   determinism smoke check.

   Static mode (the default, wired to `dune build @lint`):

     tcvs_lint [--root DIR] [--config FILE] [--list-rules] [--deep]
               [--baseline FILE] [--write-baseline FILE] [--format text|json]
               [FILE...]

   parses every .ml under --root (or just the FILEs given) with
   compiler-libs and runs the Lint_rules set; findings print one per
   line, exit status 1 if any.

   `--deep` additionally builds the whole-repo call graph over lib/
   (Lint_callgraph) and runs the interprocedural tier (Lint_reach):
   event-loop purity, hot-path allocation freedom, domain-safety.
   `--baseline FILE` pins pre-existing deep findings — only findings
   whose key is absent from the file fail the run; `--write-baseline`
   regenerates the file. `--format json` emits the machine-readable
   report CI uploads as an artifact.

   Dynamic mode (the ROADMAP "trace-driven regression diffs" item):

     tcvs_lint --run-twice [--protocol 1|2|3|4|all] [--seed S]
               [--users N] [--rounds R]

   runs the honest-server harness twice with identical seeds and diffs
   the two observability reports plus the full trace-event streams,
   failing on the first divergence. This is the dynamic half of the
   determinism rule: the static rule bans the usual sources of
   nondeterminism, the double run catches whatever slips through.
   `--store DIR` runs both passes on (separate, wiped) durable stores
   under DIR and `--shards N` shards the server database, so the
   persistence layer is covered by the same byte-identity bar.

   Trace differ:

     tcvs_lint --diff-traces A.jsonl B.jsonl

   diffs two previously captured trace streams (e.g. from
   `tcvs simulate --trace`) line by line and reports the first
   divergence — the standalone half of --run-twice for traces captured
   on different machines or commits. *)

open Tcvs_lint_core

let usage =
  "tcvs_lint [--root DIR] [--config FILE] [--list-rules] [--deep]\n\
  \           [--baseline FILE] [--write-baseline FILE] [--format text|json] [FILE...]\n\
   tcvs_lint --run-twice [--protocol 1|2|3|4|all] [--seed S] [--users N] [--rounds R]\n\
  \           [--store DIR] [--shards N]\n\
   tcvs_lint --diff-traces A.jsonl B.jsonl"

(* ---- static pass ----------------------------------------------------- *)

let skip_dirs = [ "_build"; ".git"; "_opam"; ".tcvs-lint.d" ]

(* Relative paths, deterministic order: rule scopes are prefix matches
   on repo-relative paths and output order must be stable under CI. *)
let rec walk ~root rel acc =
  let abs = if rel = "" then root else Filename.concat root rel in
  let entries = Sys.readdir abs in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc entry ->
      let rel = if rel = "" then entry else rel ^ "/" ^ entry in
      let abs = Filename.concat root rel in
      if Sys.is_directory abs then
        if List.exists (String.equal entry) skip_dirs then acc else walk ~root rel acc
      else if Filename.check_suffix entry ".ml" then rel :: acc
      else acc)
    acc entries

let load_config path ~explicit =
  if Sys.file_exists path then begin
    match Lint_config.load path with
    | Ok config -> config
    | Error msg ->
        prerr_endline ("tcvs_lint: bad config: " ^ msg);
        exit 2
  end
  else if explicit then begin
    prerr_endline ("tcvs_lint: config file not found: " ^ path);
    exit 2
  end
  else Lint_config.empty

let list_rules () =
  List.iter
    (fun (rule : Lint_engine.rule) ->
      Printf.printf "%-14s scope: %s\n               %s\n" rule.id
        (String.concat ", " rule.default_scope)
        rule.summary)
    Lint_rules.all;
  List.iter
    (fun (id, summary) ->
      Printf.printf "%-18s tier: deep (interprocedural, needs --deep)\n               %s\n" id
        summary)
    Lint_reach.rules

let static_findings ~root ~config ~files =
  let files = match files with [] -> List.rev (walk ~root "" []) | files -> files in
  let findings =
    List.concat_map
      (fun rel ->
        let abs = if Filename.is_relative rel then Filename.concat root rel else rel in
        if Sys.file_exists abs then
          Lint_engine.lint_file ~config ~rules:Lint_rules.all ~file:rel abs
        else begin
          prerr_endline ("tcvs_lint: no such file: " ^ rel);
          exit 2
        end)
      files
  in
  Lint_engine.sort findings

(* ---- deep pass: call graph + reachability rules ----------------------- *)

let read_file abs =
  let ic = open_in_bin abs in
  let n = in_channel_length ic in
  let source = really_input_string ic n in
  close_in ic;
  source

(* dir -> dune library name, from the `(name ...)` field of each
   lib/<dir>/dune: the resolver needs it to route wrapped paths like
   Tcvs.Harness.run to lib/core/harness.ml. *)
let library_map ~root =
  let libdir = Filename.concat root "lib" in
  if not (Sys.file_exists libdir) then []
  else
    Sys.readdir libdir |> Array.to_list |> List.sort String.compare
    |> List.filter_map (fun entry ->
           let dune = Filename.concat (Filename.concat libdir entry) "dune" in
           if not (Sys.file_exists dune) then None
           else
             let source = read_file dune in
             let tokens =
               String.split_on_char '\n' source
               |> List.concat_map (String.split_on_char ' ')
               |> List.concat_map (String.split_on_char '(')
               |> List.concat_map (String.split_on_char ')')
               |> List.filter (fun t -> String.trim t <> "")
             in
             let rec find = function
               | "name" :: name :: _ -> Some ("lib/" ^ entry, String.trim name)
               | _ :: rest -> find rest
               | [] -> None
             in
             find tokens)

let run_deep ~root ~config =
  let files =
    List.rev (walk ~root "" [])
    |> List.filter (Lint_config.path_has_prefix ~prefix:"lib")
  in
  let sources = List.map (fun rel -> (rel, read_file (Filename.concat root rel))) files in
  let graph = Lint_callgraph.build_from_sources ~libraries:(library_map ~root) sources in
  Lint_reach.analyze ~config graph

let run_static ~root ~config_path ~explicit_config ~files ~deep ~baseline_path
    ~write_baseline ~format =
  let config =
    let path =
      if Filename.is_relative config_path then Filename.concat root config_path
      else config_path
    in
    load_config path ~explicit:explicit_config
  in
  let static = static_findings ~root ~config ~files in
  let deep_findings = if deep then run_deep ~root ~config else [] in
  (match write_baseline with
  | Some path ->
      let keys = List.map Lint_reach.key deep_findings in
      let oc = open_out path in
      output_string oc (Lint_reach.render_baseline keys);
      close_out oc;
      Printf.printf "wrote %d baseline key%s to %s\n" (List.length keys)
        (if List.length keys = 1 then "" else "s")
        path
  | None -> ());
  let baseline =
    (* a just-written baseline pins the findings it records: the write
       is the explicit decision to accept them as residue *)
    if write_baseline <> None then List.map Lint_reach.key deep_findings
    else
      match baseline_path with
      | None -> []
      | Some path -> (
          match Lint_reach.load_baseline path with
          | Ok keys -> keys
          | Error msg ->
              prerr_endline ("tcvs_lint: " ^ msg);
              exit 2)
  in
  let fresh, pinned, stale = Lint_reach.apply_baseline ~baseline deep_findings in
  (match format with
  | `Json -> print_endline (Lint_reach.json_report ~static ~deep:fresh ~baselined:pinned ~stale)
  | `Text ->
      List.iter (fun f -> print_endline (Lint_engine.to_string f)) static;
      List.iter (fun f -> print_endline (Lint_reach.to_string f)) fresh;
      if pinned <> [] then
        Printf.printf "%d baselined finding%s pinned (burn-down list: %s)\n"
          (List.length pinned)
          (if List.length pinned = 1 then "" else "s")
          (Option.value baseline_path ~default:"");
      if stale <> [] then begin
        Printf.printf
          "%d stale baseline entr%s (finding fixed — delete the line):\n"
          (List.length stale)
          (if List.length stale = 1 then "y" else "ies");
        List.iter (fun k -> Printf.printf "  %s\n" k) stale
      end);
  match (static, fresh) with
  | [], [] -> 0
  | _ ->
      if format = `Text then
        Printf.printf "%d finding%s\n"
          (List.length static + List.length fresh)
          (if List.length static + List.length fresh = 1 then "" else "s");
      1

(* ---- dynamic pass: run twice, diff the evidence ---------------------- *)

let protocol_of_string k epoch_len = function
  | "1" -> Some (Tcvs.Harness.Protocol_1 { k })
  | "2" ->
      Some
        (Tcvs.Harness.Protocol_2
           { k; tag_mode = `Tagged; check_gctr = true; sync_trigger = `Per_user })
  | "3" -> Some (Tcvs.Harness.Protocol_3 { epoch_len })
  | "4" -> Some (Tcvs.Harness.Protocol_4 { announce_every = 4 })
  | _ -> None

(* Same traffic profile as `tcvs simulate` so the smoke check exercises
   the code path users actually run. *)
let workload ~users ~rounds ~seed =
  Workload.Schedule.generate
    {
      Workload.Schedule.default_profile with
      Workload.Schedule.users;
      files = 24;
      mean_think = 4.0;
      offline_probability = 0.02;
      mean_offline = 30.0;
    }
    ~seed ~rounds

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun entry -> rm_rf (Filename.concat path entry)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let run_once ~protocol ~users ~rounds ~seed ~store_dir ~shards =
  Obs.set_tracing true;
  (* A leftover store would be recovered rather than created, changing
     the run: each pass starts from a clean directory. *)
  (match store_dir with Some dir -> rm_rf dir | None -> ());
  let events = workload ~users ~rounds ~seed in
  let setup =
    { (Tcvs.Harness.default_setup ~protocol ~users ~adversary:Tcvs.Adversary.Honest) with
      Tcvs.Harness.seed; store_dir; shards }
  in
  let outcome = Tcvs.Harness.run setup ~events in
  (outcome, Obs.Report.to_json (), Obs.Report.trace_lines ())

let first_diff a b =
  let rec go i = function
    | [], [] -> None
    | x :: xs, y :: ys -> if String.equal x y then go (i + 1) (xs, ys) else Some (i, x, y)
    | x :: _, [] -> Some (i, x, "<missing>")
    | [], y :: _ -> Some (i, "<missing>", y)
  in
  go 1 (a, b)

let diff_streams ~what a b =
  if List.equal String.equal a b then true
  else begin
    (match first_diff a b with
    | Some (i, x, y) ->
        Printf.printf "  %s diverges at line %d:\n    run 1: %s\n    run 2: %s\n" what i x y
    | None -> ());
    false
  end

let run_twice_one ~name ~protocol ~users ~rounds ~seed ~store_dir ~shards =
  (* Two distinct directories: report byte-identity must hold across
     different store locations, which is why the path never enters the
     Obs meta. *)
  let dir n = Option.map (fun d -> Filename.concat d n) store_dir in
  let o1, report1, trace1 =
    run_once ~protocol ~users ~rounds ~seed ~store_dir:(dir "run1") ~shards
  in
  let o2, report2, trace2 =
    run_once ~protocol ~users ~rounds ~seed ~store_dir:(dir "run2") ~shards
  in
  Printf.printf
    "protocol %s: seed %S, %d users, %d rounds — run 1: %d tx / %d rounds, run 2: %d tx / %d \
     rounds\n"
    name seed users rounds o1.Tcvs.Harness.completed_transactions o1.Tcvs.Harness.rounds_run
    o2.Tcvs.Harness.completed_transactions o2.Tcvs.Harness.rounds_run;
  let report_ok =
    diff_streams ~what:"metrics report" (String.split_on_char '\n' report1)
      (String.split_on_char '\n' report2)
  in
  let trace_ok = diff_streams ~what:"trace" trace1 trace2 in
  if report_ok && trace_ok then begin
    Printf.printf "  identical: %d report lines, %d trace events\n"
      (List.length (String.split_on_char '\n' report1))
      (List.length trace1);
    true
  end
  else false

let run_twice ~protocols ~users ~rounds ~seed ~k ~epoch_len ~store_dir ~shards =
  let selected =
    match protocols with
    | "all" -> [ "1"; "2"; "3"; "4" ]
    | p -> String.split_on_char ',' p
  in
  let ok =
    List.fold_left
      (fun ok name ->
        match protocol_of_string k epoch_len name with
        | Some protocol ->
            run_twice_one ~name ~protocol ~users ~rounds ~seed ~store_dir ~shards && ok
        | None ->
            prerr_endline ("tcvs_lint: unknown protocol " ^ name ^ " (use 1, 2, 3, 4 or all)");
            exit 2)
      true selected
  in
  if ok then begin
    print_endline "determinism smoke: all runs byte-identical";
    0
  end
  else begin
    print_endline "determinism smoke: DIVERGENCE detected";
    1
  end

(* ---- trace differ ---------------------------------------------------- *)

let read_lines path =
  if not (Sys.file_exists path) then begin
    prerr_endline ("tcvs_lint: no such trace file: " ^ path);
    exit 2
  end;
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let diff_trace_files a b =
  let lines_a = read_lines a and lines_b = read_lines b in
  Printf.printf "diffing %s (%d lines) against %s (%d lines)\n" a (List.length lines_a) b
    (List.length lines_b);
  if diff_streams ~what:"trace" lines_a lines_b then begin
    print_endline "traces identical";
    0
  end
  else 1

(* ---- entry ----------------------------------------------------------- *)

let () =
  let root = ref "." in
  let config_path = ref ".tcvs-lint" in
  let explicit_config = ref false in
  let do_list = ref false in
  let do_deep = ref false in
  let baseline_path = ref "" in
  let write_baseline = ref "" in
  let format = ref "text" in
  let do_run_twice = ref false in
  let protocols = ref "all" in
  let seed = ref "tcvs-lint-smoke" in
  let users = ref 4 in
  let rounds = ref 300 in
  let k = ref 8 in
  let epoch_len = ref 120 in
  let store = ref "" in
  let shards = ref 0 in
  let diff_a = ref "" in
  let diff_b = ref "" in
  let files = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repo root to scan (default .)");
      ( "--config",
        Arg.String
          (fun path ->
            config_path := path;
            explicit_config := true),
        "FILE lint config (default .tcvs-lint under --root, optional)" );
      ("--list-rules", Arg.Set do_list, " print the rule catalogue and exit");
      ( "--deep",
        Arg.Set do_deep,
        " also run the interprocedural tier (call-graph reachability over lib/)" );
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE pin deep findings listed in FILE; only new findings fail" );
      ( "--write-baseline",
        Arg.String
          (fun path ->
            write_baseline := path;
            do_deep := true),
        "FILE regenerate the baseline from the current deep findings (implies --deep)" );
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun f -> format := f),
        " output format (default text); json is the CI artifact schema" );
      ("--run-twice", Arg.Set do_run_twice, " determinism smoke: run twice, diff evidence");
      ( "--protocol",
        Arg.Set_string protocols,
        "P protocols for --run-twice: 1, 2, 3, 4, comma list, or all (default all)" );
      ("--seed", Arg.Set_string seed, "S PRNG seed for --run-twice");
      ("--users", Arg.Set_int users, "N users for --run-twice (default 4)");
      ("--rounds", Arg.Set_int rounds, "R workload length for --run-twice (default 300)");
      ("--k", Arg.Set_int k, "K sync period for protocols 1/2 (default 8)");
      ("--epoch-len", Arg.Set_int epoch_len, "T epoch length for protocol 3 (default 120)");
      ( "--store",
        Arg.Set_string store,
        "DIR run --run-twice on durable stores under DIR (wiped per pass)" );
      ("--shards", Arg.Set_int shards, "N shard the server database for --run-twice");
      ( "--diff-traces",
        Arg.Tuple [ Arg.Set_string diff_a; Arg.Set_string diff_b ],
        "A B diff two captured trace streams, report the first divergence" );
    ]
  in
  Arg.parse spec (fun file -> files := file :: !files) usage;
  if !do_list then begin
    list_rules ();
    exit 0
  end;
  let status =
    if !diff_a <> "" || !diff_b <> "" then diff_trace_files !diff_a !diff_b
    else if !do_run_twice then
      run_twice ~protocols:!protocols ~users:!users ~rounds:!rounds ~seed:!seed ~k:!k
        ~epoch_len:!epoch_len
        ~store_dir:(if !store = "" then None else Some !store)
        ~shards:(if !shards = 0 then None else Some !shards)
    else
      run_static ~root:!root ~config_path:!config_path ~explicit_config:!explicit_config
        ~files:(List.rev !files) ~deep:!do_deep
        ~baseline_path:(if !baseline_path = "" then None else Some !baseline_path)
        ~write_baseline:(if !write_baseline = "" then None else Some !write_baseline)
        ~format:(if !format = "json" then `Json else `Text)
  in
  exit status
