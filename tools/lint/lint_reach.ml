(* The interprocedural lint tier: three reachability analyses over the
   {!Lint_callgraph}, plus the baseline mechanism that lets
   pre-existing findings be pinned and burned down instead of blocking
   the build.

   Roots are declared in the source itself with
   [@tcvs.lint.root "<tag>"] on the entry-point bindings — the daemon's
   select-tick handlers carry "event-loop", the VO replay and Merkle
   digest-verification entry points carry "hot-path" — so the analyses
   follow the code when entry points move, and fixtures can define
   their own roots. Domain-spawn sites need no annotation: any def that
   references [Domain.spawn] is a spawn site.

   Suppression mirrors the syntactic tier: a deep finding is charged to
   the def (or toplevel binding) it fires in, and is silenced by a
   [@tcvs.lint.allow "<rule>"] attribute on that binding, an
   `allow <rule> <path>` config directive for its file, or a baseline
   entry for its key. Keys are line-number-free
   (rule|file|symbol|detail), so a baseline survives unrelated edits to
   the file. *)

module G = Lint_callgraph

type finding = {
  file : string;
  line : int;
  col : int;
  rule_id : string;
  symbol : string; (* the def or binding charged: "Daemon.serve_admin" *)
  detail : string; (* primitive / allocation kind / shared-state kind *)
  message : string;
}

let key f = String.concat "|" [ f.rule_id; f.file; f.symbol; f.detail ]

let pp_finding fmt (f : finding) =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule_id f.message

let to_string f = Format.asprintf "%a" pp_finding f

let sort findings =
  List.sort
    (fun a b ->
      match String.compare a.file b.file with
      | 0 -> (
          match Int.compare a.line b.line with
          | 0 -> (
              match Int.compare a.col b.col with
              | 0 -> String.compare a.detail b.detail
              | c -> c)
          | c -> c)
      | c -> c)
    findings

(* ---- Rule ids, root tags, catalogue ---------------------------------- *)

let event_loop_purity_id = "event-loop-purity"
let event_loop_root_tag = "event-loop"
let hot_path_alloc_id = "hot-path-alloc"
let hot_path_root_tag = "hot-path"
let domain_safety_id = "domain-safety"

let rules =
  [
    ( event_loop_purity_id,
      "no blocking primitive (Unix.sleep, blocking read/write, fsync outside the \
       store's flush paths, Mutex.lock, channel I/O) reachable from a def marked \
       [@tcvs.lint.root \"event-loop\"] — the daemon's select-tick handlers" );
    ( hot_path_alloc_id,
      "no closure / ref / list-cons / string-concat allocation reachable from a def \
       marked [@tcvs.lint.root \"hot-path\"] — VO replay and Merkle digest \
       verification — unless allowlisted as a provably-amortized builder" );
    ( domain_safety_id,
      "no mutable toplevel state (ref, Hashtbl, mutable record fields, arrays) in a \
       module reachable from more than one Domain.spawn site — the gating check for \
       running shards on OCaml 5 domains" );
  ]

(* ---- Blocking-primitive classification ------------------------------- *)

let strip_stdlib name =
  match String.split_on_char '.' name with
  | "Stdlib" :: rest -> String.concat "." rest
  | _ -> name

(* Primitives that block regardless of fd flags. *)
let always_blocking =
  [
    ("Unix.sleep", "suspends the whole process");
    ("Unix.sleepf", "suspends the whole process");
    ("Thread.delay", "suspends the event-loop thread");
    ("Mutex.lock", "may park the event loop behind another domain");
    ("Condition.wait", "parks the event loop");
    ("Unix.waitpid", "blocks until a child exits");
    ("Unix.system", "blocks for a whole subprocess");
    ("Unix.select", "nested select inside a tick handler stalls the round clock");
  ]

(* File/socket I/O: blocking unless the fd is nonblocking, which the
   parser cannot see; the store's group-commit flush is the sanctioned
   blocking point of a tick, so these are exempt inside lib/store. *)
let io_blocking =
  [
    ("Unix.read", "blocking read on a blocking fd");
    ("Unix.write", "blocking write on a blocking fd");
    ("Unix.write_substring", "blocking write on a blocking fd");
    ("Unix.single_write", "blocking write on a blocking fd");
    ("Unix.single_write_substring", "blocking write on a blocking fd");
    ("Unix.fsync", "durability barrier outside the store's flush path");
    ("Unix.fdatasync", "durability barrier outside the store's flush path");
    ("output_string", "blocking channel write");
    ("output_bytes", "blocking channel write");
    ("output_char", "blocking channel write");
    ("output_byte", "blocking channel write");
    ("output_value", "blocking channel write");
    ("flush", "blocking channel flush");
    ("input_line", "blocking channel read");
    ("input_byte", "blocking channel read");
    ("input_char", "blocking channel read");
    ("really_input", "blocking channel read");
    ("really_input_string", "blocking channel read");
  ]

let store_exempt_file file = Lint_config.path_has_prefix ~prefix:"lib/store" file

let classify_blocking ~file name =
  let name = strip_stdlib name in
  match List.assoc_opt name always_blocking with
  | Some why -> Some (name, why)
  | None -> (
      match List.assoc_opt name io_blocking with
      | Some why when not (store_exempt_file file) -> Some (name, why)
      | _ -> None)

(* ---- Shared helpers --------------------------------------------------- *)

let allowed config rule (def : G.def) =
  Lint_config.rule_disabled config rule
  || Lint_config.allowed_by_config config rule def.G.d_file
  || List.exists (String.equal rule) def.G.d_allows

let loc_pos (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

(* Only function defs are scanned: a value def's body ran once at
   module init, so what it allocates or blocks on is not chargeable to
   the root that merely reads the value. *)
let reached_defs graph reached =
  Hashtbl.fold
    (fun id _ acc ->
      match G.find_def graph id with
      | Some d when d.G.d_is_fun -> d :: acc
      | _ -> acc)
    reached []
  |> List.sort (fun (a : G.def) b -> String.compare a.G.d_id b.G.d_id)

(* ---- event-loop-purity ------------------------------------------------ *)

let check_event_loop ~config graph =
  let roots = G.defs_with_root graph event_loop_root_tag in
  match roots with
  | [] -> []
  | _ ->
      let reached =
        G.reachable graph ~roots:(List.map (fun (d : G.def) -> d.G.d_id) roots)
      in
      reached_defs graph reached
      |> List.concat_map (fun (def : G.def) ->
             if allowed config event_loop_purity_id def then []
             else
               let seen = Hashtbl.create 4 in
               List.rev def.G.d_extern
               |> List.filter_map (fun (name, loc) ->
                      match classify_blocking ~file:def.G.d_file name with
                      | Some (prim, why) when not (Hashtbl.mem seen prim) ->
                          Hashtbl.replace seen prim ();
                          let line, col = loc_pos loc in
                          Some
                            {
                              file = def.G.d_file;
                              line;
                              col;
                              rule_id = event_loop_purity_id;
                              symbol = def.G.d_id;
                              detail = prim;
                              message =
                                Printf.sprintf
                                  "%s in %s (%s) is reachable from the event loop: %s"
                                  prim def.G.d_id why (G.path_to reached def.G.d_id);
                            }
                      | _ -> None))

(* ---- hot-path-alloc --------------------------------------------------- *)

(* Bare allocator references surfaced as extern facts by the graph. *)
let alloc_externs =
  [
    ("ref", "ref", "allocates a fresh ref cell");
    ("^", "string-concat", "allocates and copies both strings");
    ("@", "list-append", "copies the whole left list");
  ]

let check_hot_path ~config graph =
  let roots = G.defs_with_root graph hot_path_root_tag in
  match roots with
  | [] -> []
  | _ ->
      let reached =
        G.reachable graph ~roots:(List.map (fun (d : G.def) -> d.G.d_id) roots)
      in
      reached_defs graph reached
      |> List.concat_map (fun (def : G.def) ->
             if allowed config hot_path_alloc_id def then []
             else begin
               let mk detail loc message =
                 let line, col = loc_pos loc in
                 {
                   file = def.G.d_file;
                   line;
                   col;
                   rule_id = hot_path_alloc_id;
                   symbol = def.G.d_id;
                   detail;
                   message =
                     Printf.sprintf "%s; on the hot path: %s" message
                       (G.path_to reached def.G.d_id);
                 }
               in
               let shape =
                 (match def.G.d_closure_loc with
                 | Some loc when def.G.d_closures > 0 ->
                     [
                       mk "closure" loc
                         (Printf.sprintf "%s allocates %d closure%s per call"
                            def.G.d_id def.G.d_closures
                            (if def.G.d_closures = 1 then "" else "s"));
                     ]
                 | _ -> [])
                 @
                 match def.G.d_cons_loc with
                 | Some loc when def.G.d_cons > 0 ->
                     [
                       mk "list-cons" loc
                         (Printf.sprintf "%s builds lists (%d cons site%s)"
                            def.G.d_id def.G.d_cons
                            (if def.G.d_cons = 1 then "" else "s"));
                     ]
                 | _ -> []
               in
               let seen = Hashtbl.create 4 in
               let externs =
                 List.rev def.G.d_extern
                 |> List.filter_map (fun (name, loc) ->
                        match
                          List.find_opt
                            (fun (n, _, _) -> String.equal n (strip_stdlib name))
                            alloc_externs
                        with
                        | Some (_, detail, why) when not (Hashtbl.mem seen detail) ->
                            Hashtbl.replace seen detail ();
                            Some
                              (mk detail loc
                                 (Printf.sprintf "%s in %s %s"
                                    (strip_stdlib name) def.G.d_id why))
                        | _ -> None)
               in
               shape @ externs
             end)

(* ---- domain-safety ---------------------------------------------------- *)

let spawn_sites graph =
  Hashtbl.fold
    (fun _ (def : G.def) acc ->
      if
        List.exists
          (fun (name, _) -> String.equal (strip_stdlib name) "Domain.spawn")
          def.G.d_extern
      then def :: acc
      else acc)
    graph.G.defs []
  |> List.sort (fun (a : G.def) b -> String.compare a.G.d_id b.G.d_id)

let check_domain_safety ~config graph =
  match spawn_sites graph with
  | [] | [ _ ] -> [] (* zero or one domain: nothing is shared across domains *)
  | sites ->
      (* per spawn site, which files does the spawned domain (over-
         approximated by everything reachable from the enclosing def)
         touch? *)
      let touched =
        List.map
          (fun (site : G.def) ->
            let reached = G.reachable graph ~roots:[ site.G.d_id ] in
            let files = Hashtbl.create 16 in
            Hashtbl.iter
              (fun id _ ->
                match G.find_def graph id with
                | Some d -> Hashtbl.replace files d.G.d_file ()
                | None -> ())
              reached;
            (site, files))
          sites
      in
      List.rev graph.G.mutables
      |> List.filter_map (fun (m : G.mutable_site) ->
             if
               Lint_config.rule_disabled config domain_safety_id
               || Lint_config.allowed_by_config config domain_safety_id m.G.m_file
               || List.exists (String.equal domain_safety_id) m.G.m_allows
             then None
             else
               let reachers =
                 List.filter_map
                   (fun ((site : G.def), files) ->
                     if Hashtbl.mem files m.G.m_file then Some site.G.d_id else None)
                   touched
               in
               if List.length reachers >= 2 then begin
                 let line, col = loc_pos m.G.m_loc in
                 Some
                   {
                     file = m.G.m_file;
                     line;
                     col;
                     rule_id = domain_safety_id;
                     symbol = m.G.m_id;
                     detail = "shared-" ^ m.G.m_kind;
                     message =
                       Printf.sprintf
                         "%s is toplevel mutable state (%s) in a module reachable \
                          from %d Domain.spawn sites (%s); make it per-domain \
                          (Domain.DLS) or guard it and allowlist"
                         m.G.m_id m.G.m_kind (List.length reachers)
                         (String.concat ", " reachers);
                   }
               end
               else None)

(* ---- Entry ------------------------------------------------------------ *)

let analyze ~config graph =
  sort
    (check_event_loop ~config graph
    @ check_hot_path ~config graph
    @ check_domain_safety ~config graph)

(* ---- Baseline --------------------------------------------------------- *)

(* One key per line, '#' comments. The file is committed; CI fails on
   any finding whose key is absent and asserts the committed file only
   ever loses lines. *)

let baseline_of_string source =
  String.split_on_char '\n' source
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None else Some line)

let load_baseline path =
  if not (Sys.file_exists path) then Error (path ^ ": no such baseline file")
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let source = really_input_string ic n in
    close_in ic;
    Ok (baseline_of_string source)
  end

let render_baseline keys =
  let sorted = List.sort_uniq String.compare keys in
  String.concat "\n"
    ("# tcvs-lint deep-tier baseline: pinned pre-existing findings, one"
     :: "# key (rule|file|symbol|detail) per line. This file only ever"
     :: "# shrinks: fix or justify a finding, delete its line. CI diffs"
     :: "# against the committed copy and fails if a line appears."
     :: sorted)
  ^ "\n"

(* ---- JSON report ------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* The JSON schema is part of the tool's contract (CI artifacts, the
   test_lint.ml schema-stability case): version bumps on any shape
   change. *)
let json_report ~static ~deep ~baselined ~stale =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"version\":1,\"findings\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char b ',' in
  List.iter
    (fun (f : Lint_engine.finding) ->
      sep ();
      Printf.bprintf b
        "{\"tier\":\"syntactic\",\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
        (json_escape f.Lint_engine.rule_id)
        (json_escape f.Lint_engine.file)
        f.Lint_engine.line f.Lint_engine.col
        (json_escape f.Lint_engine.message))
    static;
  let deep_entry is_baselined (f : finding) =
    sep ();
    Printf.bprintf b
      "{\"tier\":\"deep\",\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"symbol\":\"%s\",\"detail\":\"%s\",\"key\":\"%s\",\"baselined\":%b,\"message\":\"%s\"}"
      (json_escape f.rule_id) (json_escape f.file) f.line f.col (json_escape f.symbol)
      (json_escape f.detail) (json_escape (key f)) is_baselined (json_escape f.message)
  in
  List.iter (deep_entry false) deep;
  List.iter (deep_entry true) baselined;
  Buffer.add_string b "],\"summary\":{";
  Printf.bprintf b "\"syntactic\":%d,\"deep_new\":%d,\"deep_baselined\":%d,\"stale_baseline\":["
    (List.length static) (List.length deep) (List.length baselined);
  List.iteri
    (fun i k ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\"%s\"" (json_escape k))
    stale;
  Buffer.add_string b "]}}";
  Buffer.contents b

(* Split findings into (new, baselined, stale-keys). *)
let apply_baseline ~baseline findings =
  let keys = List.map key findings in
  let fresh, pinned =
    List.partition
      (fun f -> not (List.exists (String.equal (key f)) baseline))
      findings
  in
  let stale =
    List.filter (fun k -> not (List.exists (String.equal k) keys)) baseline
  in
  (fresh, pinned, stale)
