examples/partition_attack.ml: Adversary Format Harness List Sim Tcvs Workload
