examples/offline_epochs.mli:
