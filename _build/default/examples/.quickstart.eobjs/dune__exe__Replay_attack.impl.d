examples/replay_attack.ml: Adversary Format Harness List Mtree String Tcvs Wgraph
