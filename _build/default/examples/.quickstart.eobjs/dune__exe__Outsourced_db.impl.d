examples/outsourced_db.ml: Adversary Format Harness Mtree Pki Sim Tcvs
