examples/quickstart.mli:
