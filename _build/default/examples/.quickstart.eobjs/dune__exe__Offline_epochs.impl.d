examples/offline_epochs.ml: Adversary Format Harness List Sim Tcvs Workload
