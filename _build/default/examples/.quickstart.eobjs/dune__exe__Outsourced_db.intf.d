examples/outsourced_db.mli:
