examples/partition_attack.mli:
