examples/fault_localization.ml: Adversary Format Harness List Sim Tcvs Workload
