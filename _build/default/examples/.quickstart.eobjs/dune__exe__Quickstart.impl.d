examples/quickstart.ml: Adversary Cvs Format List Message Protocol2 Server Sim Tcvs Vcs
