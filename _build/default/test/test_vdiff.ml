(* Tests for the Myers diff and invertible patch layer. *)

let rng = Crypto.Prng.create ~seed:"test-vdiff"

let random_text max_lines =
  let n = Crypto.Prng.int rng (max_lines + 1) in
  String.concat "\n"
    (List.init n (fun _ ->
         String.init (Crypto.Prng.int rng 6) (fun _ ->
             Crypto.Prng.pick rng [| 'a'; 'b'; 'c'; ' '; 'x' |])))

(* Mutate a text slightly, so diffs exercise realistic shapes. *)
let mutate text =
  let lines = Array.of_list (Vdiff.Myers.split_lines text) in
  let lines = Array.to_list lines in
  List.concat_map
    (fun l ->
      match Crypto.Prng.int rng 10 with
      | 0 -> [] (* delete *)
      | 1 -> [ l; "inserted" ]
      | 2 -> [ l ^ "!" ]
      | _ -> [ l ])
    lines
  |> String.concat "\n"

(* ---- Myers ------------------------------------------------------------- *)

let script_projections script =
  let olds =
    List.filter_map
      (function Vdiff.Myers.Keep l | Vdiff.Myers.Del l -> Some l | Vdiff.Myers.Add _ -> None)
      script
  and news =
    List.filter_map
      (function Vdiff.Myers.Keep l | Vdiff.Myers.Add l -> Some l | Vdiff.Myers.Del _ -> None)
      script
  in
  (olds, news)

let test_myers_projections () =
  for _ = 1 to 300 do
    let a = random_text 30 in
    let b = if Crypto.Prng.bool rng then mutate a else random_text 30 in
    let script = Vdiff.Myers.diff a b in
    let olds, news = script_projections script in
    Alcotest.(check (list string)) "old projection" (Vdiff.Myers.split_lines a) olds;
    Alcotest.(check (list string)) "new projection" (Vdiff.Myers.split_lines b) news
  done

let test_myers_identical () =
  let script = Vdiff.Myers.diff "a\nb\nc" "a\nb\nc" in
  Alcotest.(check bool) "all Keep" true
    (List.for_all (function Vdiff.Myers.Keep _ -> true | _ -> false) script)

let test_myers_known_distances () =
  Alcotest.(check int) "identical" 0 (Vdiff.Myers.edit_distance "a\nb" "a\nb");
  Alcotest.(check int) "one line changed" 2 (Vdiff.Myers.edit_distance "a\nb\nc" "a\nb\nd");
  Alcotest.(check int) "pure insertion" 1 (Vdiff.Myers.edit_distance "a\nc" "a\nb\nc");
  Alcotest.(check int) "pure deletion" 1 (Vdiff.Myers.edit_distance "a\nb\nc" "a\nc");
  (* The classic ABCABBA → CBABAC example has distance 5. *)
  Alcotest.(check int) "myers paper example" 5
    (Vdiff.Myers.edit_distance "A\nB\nC\nA\nB\nB\nA" "C\nB\nA\nB\nA\nC")

let test_myers_minimality_vs_lcs () =
  (* distance = |a| + |b| - 2·LCS; check against a quadratic LCS on
     small inputs. *)
  let lcs a b =
    let a = Array.of_list a and b = Array.of_list b in
    let n = Array.length a and m = Array.length b in
    let dp = Array.make_matrix (n + 1) (m + 1) 0 in
    for i = 1 to n do
      for j = 1 to m do
        dp.(i).(j) <-
          (if a.(i - 1) = b.(j - 1) then dp.(i - 1).(j - 1) + 1
           else max dp.(i - 1).(j) dp.(i).(j - 1))
      done
    done;
    dp.(n).(m)
  in
  for _ = 1 to 200 do
    let a = random_text 12 and b = random_text 12 in
    let la = Vdiff.Myers.split_lines a and lb = Vdiff.Myers.split_lines b in
    let expected = List.length la + List.length lb - (2 * lcs la lb) in
    Alcotest.(check int) "minimal distance" expected (Vdiff.Myers.edit_distance a b)
  done

(* ---- Patch -------------------------------------------------------------- *)

let test_patch_roundtrip () =
  for _ = 1 to 500 do
    let a = random_text 40 in
    let b = if Crypto.Prng.bool rng then mutate a else random_text 40 in
    let p = Vdiff.Patch.make ~old_:a ~new_:b in
    (match Vdiff.Patch.apply p a with
    | Ok b' -> Alcotest.(check string) "apply (make a b) a = b" b b'
    | Error e -> Alcotest.failf "apply failed: %s" e);
    match Vdiff.Patch.apply (Vdiff.Patch.inverse p) b with
    | Ok a' -> Alcotest.(check string) "inverse round trips" a a'
    | Error e -> Alcotest.failf "inverse apply failed: %s" e
  done

let test_patch_wrong_base_rejected () =
  let p = Vdiff.Patch.make ~old_:"a\nb\nc" ~new_:"a\nX\nc" in
  (match Vdiff.Patch.apply p "a\nY\nc" with
  | Ok _ -> Alcotest.fail "patch applied to a mismatching base"
  | Error _ -> ());
  match Vdiff.Patch.apply p "a\nb" with
  | Ok _ -> Alcotest.fail "patch applied to a short base"
  | Error _ -> ()

let test_patch_counts () =
  let p = Vdiff.Patch.make ~old_:"a\nb\nc\nd" ~new_:"a\nX\nc" in
  Alcotest.(check int) "additions" 1 (Vdiff.Patch.additions p);
  Alcotest.(check int) "deletions" 2 (Vdiff.Patch.deletions p);
  Alcotest.(check bool) "not empty change" false (Vdiff.Patch.is_empty_change p);
  let id = Vdiff.Patch.make ~old_:"a\nb" ~new_:"a\nb" in
  Alcotest.(check bool) "identity is empty change" true (Vdiff.Patch.is_empty_change id)

let test_patch_wire_roundtrip () =
  for _ = 1 to 200 do
    let a = random_text 25 and b = random_text 25 in
    let p = Vdiff.Patch.make ~old_:a ~new_:b in
    match Vdiff.Patch.decode (Vdiff.Patch.encode p) with
    | None -> Alcotest.fail "decode failed"
    | Some p' ->
        Alcotest.(check bool) "ops preserved" true (Vdiff.Patch.ops p = Vdiff.Patch.ops p')
  done

let test_patch_decode_garbage () =
  Alcotest.(check bool) "bad header" true (Vdiff.Patch.decode "Z9\n" = None);
  Alcotest.(check bool) "negative count" true (Vdiff.Patch.decode "C-4\n" = None);
  Alcotest.(check bool) "truncated insert" true (Vdiff.Patch.decode "I3\nonly one line\n" = None)

let test_patch_empty_strings () =
  let p = Vdiff.Patch.make ~old_:"" ~new_:"" in
  (match Vdiff.Patch.apply p "" with
  | Ok "" -> ()
  | _ -> Alcotest.fail "empty-to-empty failed");
  let p = Vdiff.Patch.make ~old_:"" ~new_:"hello\nworld" in
  match Vdiff.Patch.apply p "" with
  | Ok s -> Alcotest.(check string) "creation from empty" "hello\nworld" s
  | Error e -> Alcotest.failf "failed: %s" e

let test_trailing_newline_preserved () =
  List.iter
    (fun (a, b) ->
      let p = Vdiff.Patch.make ~old_:a ~new_:b in
      match Vdiff.Patch.apply p a with
      | Ok b' -> Alcotest.(check string) "exact bytes" b b'
      | Error e -> Alcotest.failf "failed: %s" e)
    [ ("a\n", "a"); ("a", "a\n"); ("a\nb\n", "a\nb"); ("", "\n"); ("\n", "") ]

let prop_patch_roundtrip =
  let text_gen =
    QCheck.Gen.(
      map (String.concat "\n")
        (list_size (int_bound 20) (string_size ~gen:(char_range 'a' 'e') (int_bound 4))))
  in
  QCheck.Test.make ~name:"patch roundtrip (qcheck)" ~count:300
    QCheck.(pair (make text_gen) (make text_gen))
    (fun (a, b) ->
      let p = Vdiff.Patch.make ~old_:a ~new_:b in
      Vdiff.Patch.apply p a = Ok b
      && Vdiff.Patch.apply (Vdiff.Patch.inverse p) b = Ok a
      && (match Vdiff.Patch.decode (Vdiff.Patch.encode p) with
         | Some p' -> Vdiff.Patch.ops p' = Vdiff.Patch.ops p
         | None -> false))

let suite =
  let quick name f = Alcotest.test_case name `Quick f in
  [
    quick "myers: projections reconstruct inputs" test_myers_projections;
    quick "myers: identical inputs" test_myers_identical;
    quick "myers: known distances" test_myers_known_distances;
    quick "myers: minimality vs LCS oracle" test_myers_minimality_vs_lcs;
    quick "patch: roundtrip + inverse" test_patch_roundtrip;
    quick "patch: wrong base rejected" test_patch_wrong_base_rejected;
    quick "patch: addition/deletion counts" test_patch_counts;
    quick "patch: wire roundtrip" test_patch_wire_roundtrip;
    quick "patch: decode garbage" test_patch_decode_garbage;
    quick "patch: empty strings" test_patch_empty_strings;
    quick "patch: trailing newline exactness" test_trailing_newline_preserved;
    QCheck_alcotest.to_alcotest prop_patch_roundtrip;
  ]
