(* Tests for the signature stack: RSA, Lamport/Winternitz one-time
   signatures, the Merkle signature scheme, and the unified
   Signer/Keyring layer that plays the paper's PKI. *)

let rng = Crypto.Prng.create ~seed:"test-signatures"

let flip_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
  Bytes.to_string b

(* ---- RSA -------------------------------------------------------------- *)

let keypair = lazy (Rsa.generate rng ~bits:512)

let test_rsa_sign_verify () =
  let kp = Lazy.force keypair in
  let s = Rsa.sign kp.Rsa.private_ "the quick brown fox" in
  Alcotest.(check int) "signature length = modulus width" (Rsa.key_bytes kp.Rsa.public)
    (String.length s);
  Alcotest.(check bool) "verifies" true
    (Rsa.verify kp.Rsa.public "the quick brown fox" ~signature:s)

let test_rsa_rejects_wrong_message () =
  let kp = Lazy.force keypair in
  let s = Rsa.sign kp.Rsa.private_ "message A" in
  Alcotest.(check bool) "wrong message" false (Rsa.verify kp.Rsa.public "message B" ~signature:s)

let test_rsa_rejects_corrupted_signature () =
  let kp = Lazy.force keypair in
  let s = Rsa.sign kp.Rsa.private_ "msg" in
  for i = 0 to String.length s - 1 do
    if i mod 7 = 0 then
      Alcotest.(check bool)
        (Printf.sprintf "flipped byte %d" i)
        false
        (Rsa.verify kp.Rsa.public "msg" ~signature:(flip_byte s i))
  done

let test_rsa_rejects_wrong_key () =
  let kp = Lazy.force keypair in
  let other = Rsa.generate rng ~bits:512 in
  let s = Rsa.sign kp.Rsa.private_ "msg" in
  Alcotest.(check bool) "wrong key" false (Rsa.verify other.Rsa.public "msg" ~signature:s)

let test_rsa_rejects_bad_lengths () =
  let kp = Lazy.force keypair in
  Alcotest.(check bool) "short signature" false (Rsa.verify kp.Rsa.public "m" ~signature:"xx");
  Alcotest.(check bool) "empty signature" false (Rsa.verify kp.Rsa.public "m" ~signature:"")

let test_rsa_deterministic () =
  let kp = Lazy.force keypair in
  Alcotest.(check string) "PKCS#1 v1.5 signing is deterministic"
    (Rsa.sign kp.Rsa.private_ "same") (Rsa.sign kp.Rsa.private_ "same")

let test_rsa_public_serialisation () =
  let kp = Lazy.force keypair in
  match Rsa.public_of_string (Rsa.public_to_string kp.Rsa.public) with
  | None -> Alcotest.fail "roundtrip failed"
  | Some pub ->
      let s = Rsa.sign kp.Rsa.private_ "roundtrip" in
      Alcotest.(check bool) "deserialised key verifies" true
        (Rsa.verify pub "roundtrip" ~signature:s);
      Alcotest.(check (option reject)) "garbage rejected" None
        (Rsa.public_of_string "garbage")

(* ---- Lamport ----------------------------------------------------------- *)

let test_lamport_sign_verify () =
  let sk, pk = Hashsig.Lamport.generate rng in
  let s = Hashsig.Lamport.sign sk "hello" in
  Alcotest.(check int) "signature size" Hashsig.Lamport.signature_size (String.length s);
  Alcotest.(check bool) "verifies" true (Hashsig.Lamport.verify pk "hello" ~signature:s);
  Alcotest.(check bool) "wrong message" false (Hashsig.Lamport.verify pk "hellp" ~signature:s)

let test_lamport_rejects_corruption () =
  let sk, pk = Hashsig.Lamport.generate rng in
  let s = Hashsig.Lamport.sign sk "m" in
  Alcotest.(check bool) "flipped preimage byte" false
    (Hashsig.Lamport.verify pk "m" ~signature:(flip_byte s 100));
  Alcotest.(check bool) "truncated" false
    (Hashsig.Lamport.verify pk "m" ~signature:(String.sub s 0 64))

let test_lamport_keys_independent () =
  let sk1, _ = Hashsig.Lamport.generate rng in
  let _, pk2 = Hashsig.Lamport.generate rng in
  let s = Hashsig.Lamport.sign sk1 "m" in
  Alcotest.(check bool) "wrong public key" false (Hashsig.Lamport.verify pk2 "m" ~signature:s)

let test_lamport_public_roundtrip () =
  let _, pk = Hashsig.Lamport.generate rng in
  match Hashsig.Lamport.public_of_string (Hashsig.Lamport.public_to_string pk) with
  | None -> Alcotest.fail "roundtrip failed"
  | Some pk' ->
      Alcotest.(check string) "digests agree"
        (Crypto.Hex.encode (Hashsig.Lamport.public_key_digest pk))
        (Crypto.Hex.encode (Hashsig.Lamport.public_key_digest pk'))

(* ---- Winternitz --------------------------------------------------------- *)

let test_winternitz_all_w () =
  List.iter
    (fun w ->
      let p = Hashsig.Winternitz.params ~w in
      let sk, pk = Hashsig.Winternitz.generate p rng in
      let s = Hashsig.Winternitz.sign sk "message" in
      Alcotest.(check int)
        (Printf.sprintf "w=%d signature size" w)
        (Hashsig.Winternitz.signature_size p)
        (String.length s);
      Alcotest.(check bool) (Printf.sprintf "w=%d verifies" w) true
        (Hashsig.Winternitz.verify pk "message" ~signature:s);
      Alcotest.(check bool)
        (Printf.sprintf "w=%d rejects wrong message" w)
        false
        (Hashsig.Winternitz.verify pk "messagf" ~signature:s))
    [ 4; 8; 16; 64; 256 ]

let test_winternitz_bad_params () =
  List.iter
    (fun w ->
      match Hashsig.Winternitz.params ~w with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "w=%d should be rejected" w)
    [ 0; 1; 2; 3; 5; 7; 512 ]

let test_winternitz_chain_counts_decrease () =
  (* Larger w means fewer chains (smaller signatures). *)
  let count w = Hashsig.Winternitz.chain_count (Hashsig.Winternitz.params ~w) in
  Alcotest.(check bool) "w=4 > w=16 > w=256" true (count 4 > count 16 && count 16 > count 256)

let test_winternitz_corruption () =
  let p = Hashsig.Winternitz.params ~w:16 in
  let sk, pk = Hashsig.Winternitz.generate p rng in
  let s = Hashsig.Winternitz.sign sk "m" in
  Alcotest.(check bool) "flipped byte" false
    (Hashsig.Winternitz.verify pk "m" ~signature:(flip_byte s 33))

(* ---- MSS ----------------------------------------------------------------- *)

let test_mss_capacity_and_exhaustion () =
  let signer = Hashsig.Mss.create ~height:3 ~w:16 rng in
  Alcotest.(check int) "capacity 2^3" 8 (Hashsig.Mss.capacity signer);
  let pk = Hashsig.Mss.public_key signer in
  for i = 1 to 8 do
    let msg = Printf.sprintf "message %d" i in
    let s = Hashsig.Mss.sign signer msg in
    Alcotest.(check bool) (Printf.sprintf "signature %d verifies" i) true
      (Hashsig.Mss.verify pk msg ~signature:s);
    Alcotest.(check int) "remaining decreases" (8 - i) (Hashsig.Mss.signatures_remaining signer)
  done;
  Alcotest.check_raises "exhausted" Hashsig.Mss.Keys_exhausted (fun () ->
      ignore (Hashsig.Mss.sign signer "one too many"))

let test_mss_rejections () =
  let signer = Hashsig.Mss.create ~height:2 ~w:16 rng in
  let pk = Hashsig.Mss.public_key signer in
  let s = Hashsig.Mss.sign signer "genuine" in
  Alcotest.(check bool) "wrong message" false (Hashsig.Mss.verify pk "forged" ~signature:s);
  Alcotest.(check bool) "wrong root" false
    (Hashsig.Mss.verify (Crypto.Sha256.digest "other root") "genuine" ~signature:s);
  Alcotest.(check bool) "truncated" false
    (Hashsig.Mss.verify pk "genuine" ~signature:(String.sub s 0 40));
  Alcotest.(check bool) "empty" false (Hashsig.Mss.verify pk "genuine" ~signature:"");
  (* Corrupt the auth path (the tail of the wire format). *)
  Alcotest.(check bool) "corrupt auth path" false
    (Hashsig.Mss.verify pk "genuine" ~signature:(flip_byte s (String.length s - 1)))

let test_mss_signature_size_constant () =
  let signer = Hashsig.Mss.create ~height:3 ~w:16 rng in
  let expected = Hashsig.Mss.signature_size ~height:3 ~w:16 in
  for i = 1 to 4 do
    let s = Hashsig.Mss.sign signer (Printf.sprintf "m%d" i) in
    Alcotest.(check int) "constant size" expected (String.length s)
  done

let test_mss_distinct_leaves_both_verify () =
  let signer = Hashsig.Mss.create ~height:2 ~w:16 rng in
  let pk = Hashsig.Mss.public_key signer in
  let s1 = Hashsig.Mss.sign signer "same message" in
  let s2 = Hashsig.Mss.sign signer "same message" in
  Alcotest.(check bool) "distinct signatures" true (s1 <> s2);
  Alcotest.(check bool) "first verifies" true
    (Hashsig.Mss.verify pk "same message" ~signature:s1);
  Alcotest.(check bool) "second verifies" true
    (Hashsig.Mss.verify pk "same message" ~signature:s2)

(* ---- Signer / Keyring ---------------------------------------------------- *)

let schemes =
  [
    Pki.Signer.Rsa { bits = 512 };
    Pki.Signer.Mss { height = 4; w = 16 };
    Pki.Signer.Hmac_shared { key = "shared-secret" };
  ]

let test_signer_all_schemes () =
  List.iter
    (fun scheme ->
      let name = Pki.Signer.scheme_name scheme in
      let signer, verifier = Pki.Signer.generate scheme rng in
      let s = Pki.Signer.sign signer "payload" in
      Alcotest.(check int)
        (name ^ ": declared size")
        (Pki.Signer.signature_size scheme)
        (String.length s);
      Alcotest.(check bool) (name ^ ": verifies") true
        (Pki.Signer.verify verifier "payload" ~signature:s);
      Alcotest.(check bool)
        (name ^ ": rejects wrong message")
        false
        (Pki.Signer.verify verifier "payloae" ~signature:s))
    schemes

let test_signer_cross_scheme_rejection () =
  let s1, _ = Pki.Signer.generate (Pki.Signer.Hmac_shared { key = "k1" }) rng in
  let _, v2 = Pki.Signer.generate (Pki.Signer.Hmac_shared { key = "k2" }) rng in
  let s = Pki.Signer.sign s1 "m" in
  Alcotest.(check bool) "different shared keys reject" false
    (Pki.Signer.verify v2 "m" ~signature:s)

let test_keyring_setup () =
  let ring, signers = Pki.Keyring.setup ~scheme:(Pki.Signer.Hmac_shared { key = "k" }) ~users:5 rng in
  Alcotest.(check int) "user count" 5 (Pki.Keyring.user_count ring);
  Alcotest.(check (list int)) "user ids" [ 0; 1; 2; 3; 4 ] (Pki.Keyring.users ring);
  let s = Pki.Signer.sign signers.(3) "hello" in
  Alcotest.(check bool) "verify by id" true (Pki.Keyring.verify ring 3 "hello" ~signature:s);
  Alcotest.(check bool) "unknown user never verifies" false
    (Pki.Keyring.verify ring 99 "hello" ~signature:s)

let test_keyring_per_user_keys () =
  (* With per-user schemes, one user's signature must not verify under
     another user's identity. *)
  let ring, signers = Pki.Keyring.setup ~scheme:(Pki.Signer.Rsa { bits = 512 }) ~users:3 rng in
  let s = Pki.Signer.sign signers.(0) "m" in
  Alcotest.(check bool) "user 0 ok" true (Pki.Keyring.verify ring 0 "m" ~signature:s);
  Alcotest.(check bool) "user 1 rejects" false (Pki.Keyring.verify ring 1 "m" ~signature:s)

let test_keyring_duplicate_registration () =
  let ring = Pki.Keyring.create () in
  let _, v = Pki.Signer.generate (Pki.Signer.Hmac_shared { key = "k" }) rng in
  Pki.Keyring.register ring 0 v;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Keyring.register: user 0 already registered") (fun () ->
      Pki.Keyring.register ring 0 v)

let test_verifier_fingerprints_differ () =
  let _, v1 = Pki.Signer.generate (Pki.Signer.Rsa { bits = 512 }) rng in
  let _, v2 = Pki.Signer.generate (Pki.Signer.Rsa { bits = 512 }) rng in
  Alcotest.(check bool) "fingerprints distinct" true
    (Pki.Signer.verifier_fingerprint v1 <> Pki.Signer.verifier_fingerprint v2)

let suite =
  let quick name f = Alcotest.test_case name `Quick f in
  [
    quick "rsa: sign/verify" test_rsa_sign_verify;
    quick "rsa: rejects wrong message" test_rsa_rejects_wrong_message;
    quick "rsa: rejects corrupted signature" test_rsa_rejects_corrupted_signature;
    quick "rsa: rejects wrong key" test_rsa_rejects_wrong_key;
    quick "rsa: rejects bad lengths" test_rsa_rejects_bad_lengths;
    quick "rsa: deterministic" test_rsa_deterministic;
    quick "rsa: public key serialisation" test_rsa_public_serialisation;
    quick "lamport: sign/verify" test_lamport_sign_verify;
    quick "lamport: rejects corruption" test_lamport_rejects_corruption;
    quick "lamport: keys independent" test_lamport_keys_independent;
    quick "lamport: public roundtrip" test_lamport_public_roundtrip;
    quick "winternitz: all parameters" test_winternitz_all_w;
    quick "winternitz: invalid parameters" test_winternitz_bad_params;
    quick "winternitz: chain counts shrink with w" test_winternitz_chain_counts_decrease;
    quick "winternitz: rejects corruption" test_winternitz_corruption;
    quick "mss: capacity and exhaustion" test_mss_capacity_and_exhaustion;
    quick "mss: rejections" test_mss_rejections;
    quick "mss: constant signature size" test_mss_signature_size_constant;
    quick "mss: distinct leaves verify" test_mss_distinct_leaves_both_verify;
    quick "signer: all schemes" test_signer_all_schemes;
    quick "signer: cross-scheme rejection" test_signer_cross_scheme_rejection;
    quick "keyring: setup" test_keyring_setup;
    quick "keyring: per-user keys" test_keyring_per_user_keys;
    quick "keyring: duplicate registration" test_keyring_duplicate_registration;
    quick "signer: fingerprints differ" test_verifier_fingerprints_differ;
  ]
