(* Tests for the simulation engine, trace bookkeeping and the
   ground-truth deviation oracle. *)

module E = Sim.Engine
module Vo = Mtree.Vo

(* A simple echo setup: one "server" agent replying to pings. *)
let echo_setup () =
  let engine : string E.t = E.create ~measure:String.length () in
  let received = ref [] in
  E.register engine Sim.Id.Server
    {
      E.on_message =
        (fun ~round ~src msg ->
          received := (round, src, msg) :: !received;
          E.send engine ~src:Sim.Id.Server ~dst:src ("echo:" ^ msg));
      on_activate = (fun ~round:_ -> ());
    };
  (engine, received)

let test_delivery_next_round () =
  let engine, received = echo_setup () in
  let got_reply = ref None in
  E.register engine (Sim.Id.User 0)
    {
      E.on_message = (fun ~round ~src:_ msg -> got_reply := Some (round, msg));
      on_activate =
        (fun ~round ->
          if round = 1 then E.send engine ~src:(Sim.Id.User 0) ~dst:Sim.Id.Server "ping");
    };
  E.run engine ~rounds:4;
  (match !received with
  | [ (2, Sim.Id.User 0, "ping") ] -> ()
  | _ -> Alcotest.fail "server should receive exactly one ping in round 2");
  match !got_reply with
  | Some (3, "echo:ping") -> ()
  | _ -> Alcotest.fail "user should get the echo in round 3"

let test_determinism () =
  let run () =
    let engine, received = echo_setup () in
    E.register engine (Sim.Id.User 0)
      {
        E.on_message = (fun ~round:_ ~src:_ _ -> ());
        on_activate =
          (fun ~round ->
            if round mod 3 = 0 then
              E.send engine ~src:(Sim.Id.User 0) ~dst:Sim.Id.Server (string_of_int round));
      };
    E.run engine ~rounds:20;
    (!received, E.messages_sent engine, E.bytes_sent engine)
  in
  Alcotest.(check bool) "two identical runs" true (run () = run ())

let test_broadcast_semantics () =
  let engine : string E.t = E.create () in
  let seen = Array.make 3 [] in
  let server_saw = ref [] in
  E.register engine Sim.Id.Server
    {
      E.on_message = (fun ~round:_ ~src:_ m -> server_saw := m :: !server_saw);
      on_activate = (fun ~round:_ -> ());
    };
  for u = 0 to 2 do
    E.register engine (Sim.Id.User u)
      {
        E.on_message = (fun ~round:_ ~src:_ m -> seen.(u) <- m :: seen.(u));
        on_activate =
          (fun ~round -> if round = 1 && u = 0 then E.broadcast engine ~src:(Sim.Id.User 0) "hi");
      }
  done;
  E.run engine ~rounds:3;
  Alcotest.(check (list string)) "sender does not hear itself" [] seen.(0);
  Alcotest.(check (list string)) "user 1 hears" [ "hi" ] seen.(1);
  Alcotest.(check (list string)) "user 2 hears" [ "hi" ] seen.(2);
  Alcotest.(check (list string)) "server never hears broadcasts" [] !server_saw;
  Alcotest.(check int) "broadcasts counted per recipient" 2 (E.broadcasts_sent engine)

let test_unregistered_destination_dropped () =
  let engine : string E.t = E.create () in
  E.register engine (Sim.Id.User 0)
    {
      E.on_message = (fun ~round:_ ~src:_ _ -> ());
      on_activate =
        (fun ~round ->
          if round = 1 then E.send engine ~src:(Sim.Id.User 0) ~dst:(Sim.Id.User 9) "void");
    };
  E.run engine ~rounds:3 (* must not raise *)

let test_duplicate_registration_rejected () =
  let engine : string E.t = E.create () in
  let handlers =
    { E.on_message = (fun ~round:_ ~src:_ _ -> ()); on_activate = (fun ~round:_ -> ()) }
  in
  E.register engine (Sim.Id.User 0) handlers;
  Alcotest.check_raises "duplicate" (Invalid_argument "Engine.register: user-0 already registered")
    (fun () -> E.register engine (Sim.Id.User 0) handlers)

let test_run_until () =
  let engine : string E.t = E.create () in
  E.register engine (Sim.Id.User 0)
    { E.on_message = (fun ~round:_ ~src:_ _ -> ()); on_activate = (fun ~round:_ -> ()) };
  let reached = E.run_until engine ~max_rounds:50 (fun () -> E.round engine >= 10) in
  Alcotest.(check bool) "predicate reached" true reached;
  Alcotest.(check int) "stopped at 10" 10 (E.round engine);
  let timed_out = E.run_until engine ~max_rounds:5 (fun () -> false) in
  Alcotest.(check bool) "times out" false timed_out

let test_alarms () =
  let engine : string E.t = E.create () in
  E.register engine (Sim.Id.User 0)
    {
      E.on_message = (fun ~round:_ ~src:_ _ -> ());
      on_activate =
        (fun ~round -> if round = 5 then E.alarm engine ~agent:(Sim.Id.User 0) ~reason:"boom");
    };
  E.run engine ~rounds:10;
  match E.first_alarm engine with
  | Some { E.agent = Sim.Id.User 0; at_round = 5; reason = "boom" } -> ()
  | _ -> Alcotest.fail "alarm not recorded correctly"

let test_bytes_accounting () =
  let engine, _ = echo_setup () in
  E.register engine (Sim.Id.User 0)
    {
      E.on_message = (fun ~round:_ ~src:_ _ -> ());
      on_activate =
        (fun ~round ->
          if round = 1 then E.send engine ~src:(Sim.Id.User 0) ~dst:Sim.Id.Server "12345");
    };
  E.run engine ~rounds:3;
  (* "12345" (5) + "echo:12345" (10) *)
  Alcotest.(check int) "bytes measured" 15 (E.bytes_sent engine)

let test_fifo_ordering () =
  (* Messages sent within one round are delivered next round in send
     order. *)
  let engine : int E.t = E.create () in
  let received = ref [] in
  E.register engine Sim.Id.Server
    {
      E.on_message = (fun ~round:_ ~src:_ m -> received := m :: !received);
      on_activate = (fun ~round:_ -> ());
    };
  E.register engine (Sim.Id.User 0)
    {
      E.on_message = (fun ~round:_ ~src:_ _ -> ());
      on_activate =
        (fun ~round ->
          if round = 1 then
            List.iter (fun m -> E.send engine ~src:(Sim.Id.User 0) ~dst:Sim.Id.Server m)
              [ 1; 2; 3; 4; 5 ]);
    };
  E.run engine ~rounds:3;
  Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4; 5 ] (List.rev !received)

(* ---- Trace ---------------------------------------------------------------- *)

let test_trace_lifecycle () =
  let tr = Sim.Trace.create () in
  let s1 = Sim.Trace.issue tr ~user:0 ~op:(Vo.Get "a") ~round:1 in
  let s2 = Sim.Trace.issue tr ~user:1 ~op:(Vo.Set ("b", "v")) ~round:2 in
  Alcotest.(check int) "two issued" 2 (Sim.Trace.count tr);
  Alcotest.(check int) "none completed" 0 (List.length (Sim.Trace.completed tr));
  Sim.Trace.complete tr ~seq:s1 ~round:3 ~answer:(Vo.Value None) ();
  Alcotest.(check int) "one completed" 1 (List.length (Sim.Trace.completed tr));
  Alcotest.(check int) "one pending" 1 (List.length (Sim.Trace.pending tr));
  Sim.Trace.complete tr ~seq:s2 ~round:4 ~answer:Vo.Updated ();
  Alcotest.(check int) "per-user count" 1 (Sim.Trace.completed_count_for_user tr ~user:1);
  Alcotest.(check int) "completed after round 1" 1
    (Sim.Trace.completed_after tr ~round:1 ~user:1);
  Alcotest.check_raises "double completion"
    (Invalid_argument "Trace.complete: transaction already completed") (fun () ->
      Sim.Trace.complete tr ~seq:s1 ~round:5 ~answer:Vo.Updated ());
  Alcotest.check_raises "unknown seq" (Invalid_argument "Trace.complete: unknown transaction")
    (fun () -> Sim.Trace.complete tr ~seq:99 ~round:5 ~answer:Vo.Updated ())

(* ---- Oracle ---------------------------------------------------------------- *)

let complete_with tr ~seq ~answer = Sim.Trace.complete tr ~seq ~round:(seq + 10) ~answer ()

let test_oracle_honest_run () =
  let tr = Sim.Trace.create () in
  let s1 = Sim.Trace.issue tr ~user:0 ~op:(Vo.Set ("k", "v1")) ~round:1 in
  complete_with tr ~seq:s1 ~answer:Vo.Updated;
  let s2 = Sim.Trace.issue tr ~user:1 ~op:(Vo.Get "k") ~round:2 in
  complete_with tr ~seq:s2 ~answer:(Vo.Value (Some "v1"));
  let v = Sim.Oracle.replay ~initial:[] tr in
  Alcotest.(check bool) "no deviation" false v.Sim.Oracle.deviated

let test_oracle_detects_wrong_answer () =
  let tr = Sim.Trace.create () in
  let s1 = Sim.Trace.issue tr ~user:0 ~op:(Vo.Set ("k", "v1")) ~round:1 in
  complete_with tr ~seq:s1 ~answer:Vo.Updated;
  let s2 = Sim.Trace.issue tr ~user:1 ~op:(Vo.Get "k") ~round:2 in
  complete_with tr ~seq:s2 ~answer:(Vo.Value (Some "stale"));
  let v = Sim.Oracle.replay ~initial:[] tr in
  Alcotest.(check bool) "deviation found" true v.Sim.Oracle.deviated;
  match v.Sim.Oracle.first_deviation with
  | Some tx -> Alcotest.(check int) "the read deviates" s2 tx.Sim.Trace.seq
  | None -> Alcotest.fail "missing first_deviation"

let test_oracle_detects_root_chain_break () =
  (* Write-only traffic: answers are all Updated, but the recorded root
     transitions expose a fork. *)
  let db0 = Mtree.Merkle_btree.of_alist [] in
  let db1 = Mtree.Merkle_btree.set db0 ~key:"a" ~value:"1" in
  let db2 = Mtree.Merkle_btree.set db1 ~key:"b" ~value:"2" in
  let r0 = Mtree.Merkle_btree.root_digest db0 in
  let r1 = Mtree.Merkle_btree.root_digest db1 in
  let r2 = Mtree.Merkle_btree.root_digest db2 in
  let tr = Sim.Trace.create () in
  let s1 = Sim.Trace.issue tr ~user:0 ~op:(Vo.Set ("a", "1")) ~round:1 in
  Sim.Trace.complete tr ~seq:s1 ~round:2 ~answer:Vo.Updated ~roots:(r0, r1) ();
  (* The server then pretends user 0's write never happened: user 1's
     write is rooted at r0, not r1. *)
  let db2' = Mtree.Merkle_btree.set db0 ~key:"b" ~value:"2" in
  let r2' = Mtree.Merkle_btree.root_digest db2' in
  let s2 = Sim.Trace.issue tr ~user:1 ~op:(Vo.Set ("b", "2")) ~round:3 in
  Sim.Trace.complete tr ~seq:s2 ~round:4 ~answer:Vo.Updated ~roots:(r0, r2') ();
  let v = Sim.Oracle.replay ~initial:[] tr in
  Alcotest.(check bool) "fork exposed by root chain" true v.Sim.Oracle.deviated;
  (* Same trace with consistent roots: clean. *)
  let tr2 = Sim.Trace.create () in
  let s1 = Sim.Trace.issue tr2 ~user:0 ~op:(Vo.Set ("a", "1")) ~round:1 in
  Sim.Trace.complete tr2 ~seq:s1 ~round:2 ~answer:Vo.Updated ~roots:(r0, r1) ();
  let s2 = Sim.Trace.issue tr2 ~user:1 ~op:(Vo.Set ("b", "2")) ~round:3 in
  Sim.Trace.complete tr2 ~seq:s2 ~round:4 ~answer:Vo.Updated ~roots:(r1, r2) ();
  let v2 = Sim.Oracle.replay ~initial:[] tr2 in
  Alcotest.(check bool) "consistent chain is clean" false v2.Sim.Oracle.deviated

let test_oracle_serial_order_is_issue_order () =
  (* Two users write the same key; trusted replay must apply them in
     issue order, so a later read sees the second value. *)
  let tr = Sim.Trace.create () in
  let s1 = Sim.Trace.issue tr ~user:0 ~op:(Vo.Set ("k", "first")) ~round:1 in
  complete_with tr ~seq:s1 ~answer:Vo.Updated;
  let s2 = Sim.Trace.issue tr ~user:1 ~op:(Vo.Set ("k", "second")) ~round:2 in
  complete_with tr ~seq:s2 ~answer:Vo.Updated;
  let s3 = Sim.Trace.issue tr ~user:0 ~op:(Vo.Get "k") ~round:3 in
  complete_with tr ~seq:s3 ~answer:(Vo.Value (Some "second"));
  Alcotest.(check bool) "clean" false (Sim.Oracle.replay ~initial:[] tr).Sim.Oracle.deviated

let test_oracle_incomplete_ignored () =
  let tr = Sim.Trace.create () in
  let _ = Sim.Trace.issue tr ~user:0 ~op:(Vo.Set ("k", "v")) ~round:1 in
  let v = Sim.Oracle.replay ~initial:[] tr in
  Alcotest.(check bool) "in-flight transactions do not deviate" false v.Sim.Oracle.deviated

let suite =
  let quick name f = Alcotest.test_case name `Quick f in
  [
    quick "engine: one-round delivery" test_delivery_next_round;
    quick "engine: determinism" test_determinism;
    quick "engine: broadcast semantics" test_broadcast_semantics;
    quick "engine: unregistered destination dropped" test_unregistered_destination_dropped;
    quick "engine: duplicate registration" test_duplicate_registration_rejected;
    quick "engine: run_until" test_run_until;
    quick "engine: alarms" test_alarms;
    quick "engine: byte accounting" test_bytes_accounting;
    quick "engine: FIFO delivery order" test_fifo_ordering;
    quick "trace: lifecycle" test_trace_lifecycle;
    quick "oracle: honest run" test_oracle_honest_run;
    quick "oracle: wrong answer" test_oracle_detects_wrong_answer;
    quick "oracle: root-chain fork" test_oracle_detects_root_chain_break;
    quick "oracle: serial order" test_oracle_serial_order_is_issue_order;
    quick "oracle: incomplete ignored" test_oracle_incomplete_ignored;
  ]
