(* Tests for the transition-graph library and the Lemma 4.1 checker,
   including cross-validation against a brute-force path test on random
   graphs. *)

module G = Wgraph.Digraph

let of_edges edges =
  List.fold_left (fun g (src, dst) -> G.add_edge g ~src ~dst) G.empty edges

let path n = of_edges (List.init (n - 1) (fun i -> (string_of_int i, string_of_int (i + 1))))

let test_basics () =
  let g = of_edges [ ("a", "b"); ("b", "c") ] in
  Alcotest.(check int) "vertices" 3 (G.vertex_count g);
  Alcotest.(check int) "edges" 2 (G.edge_count g);
  Alcotest.(check int) "in b" 1 (G.in_degree g "b");
  Alcotest.(check int) "out b" 1 (G.out_degree g "b");
  Alcotest.(check int) "total b" 2 (G.total_degree g "b");
  Alcotest.(check (list string)) "succ a" [ "b" ] (G.successors g "a");
  Alcotest.(check (list string)) "vertices sorted" [ "a"; "b"; "c" ] (G.vertices g)

let test_add_vertex_idempotent () =
  let g = G.add_vertex (G.add_vertex G.empty "v") "v" in
  Alcotest.(check int) "one vertex" 1 (G.vertex_count g);
  Alcotest.(check int) "isolated" 0 (G.total_degree g "v")

let test_parallel_edges () =
  let g = of_edges [ ("a", "b"); ("a", "b") ] in
  Alcotest.(check int) "two edges kept" 2 (G.edge_count g);
  Alcotest.(check int) "in-degree counts multiplicity" 2 (G.in_degree g "b")

let test_cycles () =
  Alcotest.(check bool) "path has no cycle" false (G.has_cycle (path 5));
  Alcotest.(check bool) "triangle" true
    (G.has_cycle (of_edges [ ("a", "b"); ("b", "c"); ("c", "a") ]));
  Alcotest.(check bool) "self-loop" true (G.has_cycle (of_edges [ ("a", "a") ]));
  Alcotest.(check bool) "diamond is acyclic" false
    (G.has_cycle (of_edges [ ("a", "b"); ("a", "c"); ("b", "d"); ("c", "d") ]))

let test_is_directed_path () =
  Alcotest.(check bool) "empty" true (G.is_directed_path G.empty);
  Alcotest.(check bool) "single vertex" true (G.is_directed_path (G.add_vertex G.empty "v"));
  Alcotest.(check bool) "path of 10" true (G.is_directed_path (path 10));
  Alcotest.(check bool) "branching" false
    (G.is_directed_path (of_edges [ ("a", "b"); ("a", "c") ]));
  Alcotest.(check bool) "two components" false
    (G.is_directed_path (of_edges [ ("a", "b"); ("c", "d") ]));
  Alcotest.(check bool) "cycle" false
    (G.is_directed_path (of_edges [ ("a", "b"); ("b", "a") ]))

let failure_name = function
  | G.Lemma41.Isolated_vertex _ -> "isolated"
  | G.Lemma41.In_degree_exceeded _ -> "indegree"
  | G.Lemma41.Cycle -> "cycle"
  | G.Lemma41.Odd_degree_count _ -> "odd-count"
  | G.Lemma41.No_source -> "no-source"

let check_fails expected g name =
  match G.Lemma41.check g with
  | Ok () -> Alcotest.failf "%s: expected %s failure" name expected
  | Error f -> Alcotest.(check string) name expected (failure_name f)

let test_lemma41_accepts_paths () =
  List.iter
    (fun n ->
      match G.Lemma41.check (path n) with
      | Ok () -> ()
      | Error f ->
          Alcotest.failf "path of %d rejected: %s" n (Format.asprintf "%a" G.Lemma41.pp_failure f))
    [ 2; 3; 10; 50 ]

let test_lemma41_failures () =
  check_fails "isolated" (G.add_vertex (path 3) "lonely") "isolated vertex";
  check_fails "indegree" (of_edges [ ("a", "c"); ("b", "c") ]) "in-degree 2";
  check_fails "cycle" (of_edges [ ("a", "b"); ("b", "c"); ("c", "a") ]) "3-cycle";
  (* Two disjoint paths: 4 odd-degree vertices. *)
  check_fails "odd-count" (of_edges [ ("a", "b"); ("c", "d") ]) "two components"

let test_lemma41_empty () =
  match G.Lemma41.check G.empty with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "empty graph should pass"

(* Random graphs: Lemma 4.1 acceptance must imply is_directed_path
   (the lemma's conclusion), and on graphs with in-degrees <= 1 and no
   cycle, acceptance must coincide with being a path. *)
let prop_lemma41_sound =
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 12)
        (map2 (fun a b -> (string_of_int a, string_of_int b)) (int_bound 7) (int_bound 7)))
  in
  QCheck.Test.make ~name:"lemma 4.1 acceptance implies directed path" ~count:2000
    (QCheck.make gen) (fun edges ->
      let g = of_edges edges in
      match G.Lemma41.check g with
      | Ok () -> G.is_directed_path g
      | Error _ -> true)

let prop_paths_always_accepted =
  QCheck.Test.make ~name:"every path is accepted" ~count:50 QCheck.(int_range 2 40) (fun n ->
      G.Lemma41.check (path n) = Ok ())

let suite =
  let quick name f = Alcotest.test_case name `Quick f in
  [
    quick "basics" test_basics;
    quick "add_vertex idempotent" test_add_vertex_idempotent;
    quick "parallel edges" test_parallel_edges;
    quick "cycle detection" test_cycles;
    quick "is_directed_path" test_is_directed_path;
    quick "lemma 4.1 accepts paths" test_lemma41_accepts_paths;
    quick "lemma 4.1 failure cases" test_lemma41_failures;
    quick "lemma 4.1 empty graph" test_lemma41_empty;
    QCheck_alcotest.to_alcotest prop_lemma41_sound;
    QCheck_alcotest.to_alcotest prop_paths_always_accepted;
  ]
