(* Tests for the arbitrary-precision naturals and primality layer:
   native-int oracle properties, algebraic identities on large values,
   serialisation roundtrips, and Miller–Rabin on known primes and
   Carmichael numbers. *)

module N = Bignum.Nat

let rng = Crypto.Prng.create ~seed:"test-bignum"

let big_nat bits = N.random rng ~bits

(* Generator of small naturals paired with their int value. *)
let small_pair_gen =
  QCheck.map (fun i -> (i, N.of_int i)) QCheck.(int_bound 1_000_000)

let nat_testable = Alcotest.testable (fun fmt n -> N.pp fmt n) N.equal

(* ---- int oracle ------------------------------------------------------ *)

let prop_add_oracle =
  QCheck.Test.make ~name:"add matches int" ~count:1000
    QCheck.(pair small_pair_gen small_pair_gen)
    (fun ((a, na), (b, nb)) -> N.to_int (N.add na nb) = Some (a + b))

let prop_sub_oracle =
  QCheck.Test.make ~name:"sub matches int (ordered)" ~count:1000
    QCheck.(pair small_pair_gen small_pair_gen)
    (fun ((a, na), (b, nb)) ->
      let hi, lo, nhi, nlo = if a >= b then (a, b, na, nb) else (b, a, nb, na) in
      N.to_int (N.sub nhi nlo) = Some (hi - lo))

let prop_mul_oracle =
  QCheck.Test.make ~name:"mul matches int" ~count:1000
    QCheck.(pair small_pair_gen small_pair_gen)
    (fun ((a, na), (b, nb)) -> N.to_int (N.mul na nb) = Some (a * b))

let prop_divmod_oracle =
  QCheck.Test.make ~name:"divmod matches int" ~count:1000
    QCheck.(pair small_pair_gen small_pair_gen)
    (fun ((a, na), (b, nb)) ->
      QCheck.assume (b > 0);
      let q, r = N.divmod na nb in
      N.to_int q = Some (a / b) && N.to_int r = Some (a mod b))

let prop_compare_oracle =
  QCheck.Test.make ~name:"compare matches int" ~count:1000
    QCheck.(pair small_pair_gen small_pair_gen)
    (fun ((a, na), (b, nb)) -> compare a b = N.compare na nb)

(* ---- algebraic identities on big values ----------------------------- *)

let test_divmod_identity_big () =
  for _ = 1 to 300 do
    let a = big_nat (1 + Crypto.Prng.int rng 800) in
    let b = N.succ (big_nat (1 + Crypto.Prng.int rng 800)) in
    let q, r = N.divmod a b in
    Alcotest.check nat_testable "a = q*b + r" a (N.add (N.mul q b) r);
    Alcotest.(check bool) "r < b" true (N.compare r b < 0)
  done

let test_mul_commutative_big () =
  for _ = 1 to 100 do
    let a = big_nat 900 and b = big_nat 1100 in
    Alcotest.check nat_testable "a*b = b*a" (N.mul a b) (N.mul b a)
  done

let test_mul_distributive_big () =
  (* (a + b) * c = a*c + b*c — crosses the Karatsuba threshold. *)
  for _ = 1 to 50 do
    let a = big_nat 1500 and b = big_nat 1400 and c = big_nat 1600 in
    Alcotest.check nat_testable "distributivity" (N.mul (N.add a b) c)
      (N.add (N.mul a c) (N.mul b c))
  done

let test_karatsuba_square_identity () =
  (* (a + b)^2 = a^2 + 2ab + b^2 with operand sizes chosen to exercise
     both schoolbook and Karatsuba paths. *)
  List.iter
    (fun bits ->
      let a = big_nat bits and b = big_nat bits in
      let lhs = N.mul (N.add a b) (N.add a b) in
      let rhs =
        N.add (N.mul a a) (N.add (N.mul (N.of_int 2) (N.mul a b)) (N.mul b b))
      in
      Alcotest.check nat_testable (Printf.sprintf "square identity at %d bits" bits) lhs rhs)
    [ 30; 100; 500; 900; 2000; 5000 ]

let test_shift_left_is_mul_pow2 () =
  for _ = 1 to 100 do
    let a = big_nat 300 in
    let s = Crypto.Prng.int rng 100 in
    let pow2 = N.shift_left N.one s in
    Alcotest.check nat_testable "a << s = a * 2^s" (N.shift_left a s) (N.mul a pow2)
  done

let test_shift_right_is_div_pow2 () =
  for _ = 1 to 100 do
    let a = big_nat 300 in
    let s = Crypto.Prng.int rng 100 in
    let pow2 = N.shift_left N.one s in
    Alcotest.check nat_testable "a >> s = a / 2^s" (N.shift_right a s) (N.div a pow2)
  done

let test_sub_negative_raises () =
  Alcotest.check_raises "1 - 2 raises" (Invalid_argument "Nat.sub: negative result")
    (fun () -> ignore (N.sub N.one N.two))

let test_division_by_zero () =
  Alcotest.check_raises "divmod by zero" Division_by_zero (fun () ->
      ignore (N.divmod N.one N.zero))

(* ---- modular arithmetic --------------------------------------------- *)

let prop_modpow_oracle =
  QCheck.Test.make ~name:"mod_pow matches naive" ~count:300
    QCheck.(triple (int_bound 50) (int_bound 12) (int_range 2 80))
    (fun (b, e, m) ->
      let naive = ref 1 in
      for _ = 1 to e do
        naive := !naive * b mod m
      done;
      N.to_int (N.mod_pow ~base:(N.of_int b) ~exp:(N.of_int e) ~modulus:(N.of_int m))
      = Some !naive)

let test_modpow_fermat () =
  (* Fermat's little theorem for a 128-bit prime. *)
  let p = Bignum.Prime.generate rng ~bits:128 in
  for _ = 1 to 10 do
    let a = N.succ (N.random_below rng (N.pred p)) in
    Alcotest.check nat_testable "a^(p-1) ≡ 1 (mod p)" N.one
      (N.mod_pow ~base:a ~exp:(N.pred p) ~modulus:p)
  done

let test_mod_inverse () =
  for _ = 1 to 200 do
    let m = N.succ (big_nat 256) in
    let a = N.random_below rng m in
    match N.mod_inverse a ~modulus:m with
    | Some x -> Alcotest.check nat_testable "a * a^-1 ≡ 1" N.one (N.rem (N.mul a x) m)
    | None ->
        Alcotest.(check bool) "no inverse implies gcd > 1 (or a ≡ 0)" true
          (N.is_zero (N.rem a m) || not (N.equal (N.gcd a m) N.one))
  done

let test_gcd_properties () =
  for _ = 1 to 100 do
    let a = big_nat 200 and b = big_nat 200 in
    let g = N.gcd a b in
    if not (N.is_zero a) then
      Alcotest.(check bool) "g | a" true (N.is_zero (N.rem a g));
    if not (N.is_zero b) then
      Alcotest.(check bool) "g | b" true (N.is_zero (N.rem b g));
    Alcotest.check nat_testable "gcd symmetric" g (N.gcd b a)
  done

(* ---- serialisation --------------------------------------------------- *)

let test_bytes_roundtrip () =
  for _ = 1 to 200 do
    let a = big_nat (1 + Crypto.Prng.int rng 500) in
    Alcotest.check nat_testable "of_bytes_be∘to_bytes_be = id" a
      (N.of_bytes_be (N.to_bytes_be a))
  done

let test_bytes_padding () =
  let a = N.of_int 0xabcd in
  Alcotest.(check string) "padded" "\x00\x00\xab\xcd" (N.to_bytes_be ~pad_to:4 a);
  Alcotest.check_raises "too wide"
    (Invalid_argument "Nat.to_bytes_be: value too wide for pad_to") (fun () ->
      ignore (N.to_bytes_be ~pad_to:1 a))

let test_decimal_roundtrip () =
  for _ = 1 to 100 do
    let a = big_nat (1 + Crypto.Prng.int rng 600) in
    Alcotest.check nat_testable "of_decimal∘to_decimal = id" a (N.of_decimal (N.to_decimal a))
  done;
  Alcotest.(check string) "zero renders" "0" (N.to_decimal N.zero);
  Alcotest.check nat_testable "known value" (N.of_int 1234567890123)
    (N.of_decimal "1234567890123")

let test_hex_roundtrip () =
  for _ = 1 to 100 do
    let a = big_nat (1 + Crypto.Prng.int rng 600) in
    Alcotest.check nat_testable "of_hex∘to_hex = id" a (N.of_hex (N.to_hex a))
  done

let test_bit_length () =
  Alcotest.(check int) "bit_length 0" 0 (N.bit_length N.zero);
  Alcotest.(check int) "bit_length 1" 1 (N.bit_length N.one);
  Alcotest.(check int) "bit_length 255" 8 (N.bit_length (N.of_int 255));
  Alcotest.(check int) "bit_length 256" 9 (N.bit_length (N.of_int 256));
  Alcotest.(check int) "bit_length 2^100" 101 (N.bit_length (N.shift_left N.one 100))

let test_test_bit () =
  let v = N.of_int 0b1010110 in
  let bits = List.map (N.test_bit v) [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  Alcotest.(check (list bool)) "bit pattern"
    [ false; true; true; false; true; false; true; false ]
    bits

(* ---- primality -------------------------------------------------------- *)

let test_random_below_bounds () =
  for _ = 1 to 300 do
    let bound = N.succ (big_nat (1 + Crypto.Prng.int rng 300)) in
    let v = N.random_below rng bound in
    Alcotest.(check bool) "v < bound" true (N.compare v bound < 0)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Nat.random_below: zero bound")
    (fun () -> ignore (N.random_below rng N.zero))

let test_random_bit_width () =
  for _ = 1 to 200 do
    let bits = 1 + Crypto.Prng.int rng 400 in
    let v = N.random rng ~bits in
    Alcotest.(check bool) "within width" true (N.bit_length v <= bits)
  done

let test_small_primes () =
  let primes = [ 2; 3; 5; 7; 97; 101; 7919 ] in
  let composites = [ 0; 1; 4; 91; 561; 1105; 1729; 2465; 6601; 8911; 7917 ] in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "%d is prime" p)
        true
        (Bignum.Prime.is_probably_prime rng (N.of_int p)))
    primes;
  (* The composite list includes the first Carmichael numbers, which
     defeat plain Fermat tests but not Miller–Rabin. *)
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%d is composite" c)
        false
        (Bignum.Prime.is_probably_prime rng (N.of_int c)))
    composites

let test_generated_prime_properties () =
  List.iter
    (fun bits ->
      let p = Bignum.Prime.generate rng ~bits in
      Alcotest.(check int) (Printf.sprintf "%d-bit width" bits) bits (N.bit_length p);
      Alcotest.(check bool) "odd" false (N.is_even p);
      Alcotest.(check bool) "probably prime" true (Bignum.Prime.is_probably_prime rng p))
    [ 32; 64; 128; 256 ]

let test_product_of_primes_composite () =
  let p = Bignum.Prime.generate rng ~bits:64 in
  let q = Bignum.Prime.generate rng ~bits:64 in
  Alcotest.(check bool) "p*q composite" false
    (Bignum.Prime.is_probably_prime rng (N.mul p q))

let suite =
  let quick name f = Alcotest.test_case name `Quick f in
  [
    QCheck_alcotest.to_alcotest prop_add_oracle;
    QCheck_alcotest.to_alcotest prop_sub_oracle;
    QCheck_alcotest.to_alcotest prop_mul_oracle;
    QCheck_alcotest.to_alcotest prop_divmod_oracle;
    QCheck_alcotest.to_alcotest prop_compare_oracle;
    quick "divmod identity on big values" test_divmod_identity_big;
    quick "mul commutative on big values" test_mul_commutative_big;
    quick "mul distributive (Karatsuba)" test_mul_distributive_big;
    quick "square identity across thresholds" test_karatsuba_square_identity;
    quick "shift_left = mul by 2^s" test_shift_left_is_mul_pow2;
    quick "shift_right = div by 2^s" test_shift_right_is_div_pow2;
    quick "sub below zero raises" test_sub_negative_raises;
    quick "division by zero raises" test_division_by_zero;
    QCheck_alcotest.to_alcotest prop_modpow_oracle;
    quick "mod_pow: Fermat's little theorem" test_modpow_fermat;
    quick "mod_inverse correctness" test_mod_inverse;
    quick "gcd properties" test_gcd_properties;
    quick "bytes roundtrip" test_bytes_roundtrip;
    quick "bytes padding" test_bytes_padding;
    quick "decimal roundtrip" test_decimal_roundtrip;
    quick "hex roundtrip" test_hex_roundtrip;
    quick "bit_length" test_bit_length;
    quick "test_bit" test_test_bit;
    quick "random_below bounds" test_random_below_bounds;
    quick "random bit width" test_random_bit_width;
    quick "primality: known values (incl. Carmichael)" test_small_primes;
    quick "prime generation properties" test_generated_prime_properties;
    quick "product of primes is composite" test_product_of_primes_composite;
  ]
