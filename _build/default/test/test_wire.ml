(* Tests for the shared binary encoding helpers and the message size
   accounting. *)

let test_wire_integers () =
  let w = Wire.W.create () in
  Wire.W.u8 w 0xab;
  Wire.W.u16 w 0x1234;
  Wire.W.u32 w 0xdeadbeef;
  Wire.W.u64 w 123456789012345;
  let r = Wire.R.of_string (Wire.W.contents w) in
  Alcotest.(check int) "u8" 0xab (Wire.R.u8 r);
  Alcotest.(check int) "u16" 0x1234 (Wire.R.u16 r);
  Alcotest.(check int) "u32" 0xdeadbeef (Wire.R.u32 r);
  Alcotest.(check int) "u64" 123456789012345 (Wire.R.u64 r);
  Alcotest.(check bool) "consumed" true (Wire.R.at_end r)

let test_wire_strings_and_lists () =
  let w = Wire.W.create () in
  Wire.W.str w "hello";
  Wire.W.str w "";
  Wire.W.list w (Wire.W.str w) [ "a"; "bb"; "ccc" ];
  let r = Wire.R.of_string (Wire.W.contents w) in
  Alcotest.(check string) "str" "hello" (Wire.R.str r);
  Alcotest.(check string) "empty str" "" (Wire.R.str r);
  Alcotest.(check (list string)) "list" [ "a"; "bb"; "ccc" ] (Wire.R.list r Wire.R.str)

let test_wire_underflow () =
  let r = Wire.R.of_string "\x00" in
  Alcotest.check_raises "u32 underflows" Wire.Underflow (fun () -> ignore (Wire.R.u32 r))

let test_wire_decode_helper () =
  let w = Wire.W.create () in
  Wire.W.str w "payload";
  let encoded = Wire.W.contents w in
  Alcotest.(check (option string)) "decodes" (Some "payload") (Wire.decode encoded Wire.R.str);
  Alcotest.(check (option string)) "trailing bytes rejected" None
    (Wire.decode (encoded ^ "x") Wire.R.str);
  Alcotest.(check (option string)) "truncation rejected" None
    (Wire.decode (String.sub encoded 0 3) Wire.R.str)

let test_wire_binary_safe () =
  let payload = String.init 256 Char.chr in
  let w = Wire.W.create () in
  Wire.W.str w payload;
  Alcotest.(check (option string)) "all byte values roundtrip" (Some payload)
    (Wire.decode (Wire.W.contents w) Wire.R.str)

(* ---- message size accounting ---------------------------------------------- *)

let test_message_sizes_positive () =
  let vo =
    Mtree.Vo.generate
      (Mtree.Merkle_btree.of_alist [ ("k", "v") ])
      (Mtree.Vo.Get "k")
  in
  let messages =
    [
      Tcvs.Message.Query { op = Mtree.Vo.Get "k"; piggyback = [] };
      Tcvs.Message.Root_signature { signer = 0; ctr = 1; signature = String.make 64 's' };
      Tcvs.Message.Response
        {
          answer = Mtree.Vo.Value (Some "v");
          vo;
          ctr = 0;
          last_user = -1;
          root_sig = None;
          epoch = 0;
          epoch_states = [];
        };
      Tcvs.Message.Sync_begin { initiator = 0 };
      Tcvs.Message.Sync_count { reporter = 0; lctr = 5 };
      Tcvs.Message.Sync_registers
        { reporter = 0; sigma = String.make 32 '0'; last = None; gctr = 3 };
      Tcvs.Message.Sync_verdict { reporter = 0; success = true };
    ]
  in
  List.iter
    (fun m ->
      let size = Tcvs.Message.encoded_size m in
      if size <= 0 then
        Alcotest.failf "non-positive size for %s" (Format.asprintf "%a" Tcvs.Message.pp m))
    messages

let test_response_size_includes_vo () =
  let big_tree =
    Mtree.Merkle_btree.of_alist
      (List.init 1000 (fun i -> (Printf.sprintf "%04d" i, "value")))
  in
  let vo = Mtree.Vo.generate big_tree (Mtree.Vo.Get "0500") in
  let response =
    Tcvs.Message.Response
      {
        answer = Mtree.Vo.Value (Some "value");
        vo;
        ctr = 0;
        last_user = 0;
        root_sig = None;
        epoch = 0;
        epoch_states = [];
      }
  in
  Alcotest.(check bool) "response size dominated by the VO" true
    (Tcvs.Message.encoded_size response >= Mtree.Vo.size_bytes vo)

let test_state_tag_properties () =
  let open Tcvs in
  let root = Crypto.Sha256.digest "root" in
  let a = State_tag.tagged ~root ~ctr:5 ~user:1 in
  let b = State_tag.tagged ~root ~ctr:5 ~user:2 in
  let c = State_tag.untagged ~root ~ctr:5 in
  Alcotest.(check bool) "user tag distinguishes" true (a <> b);
  Alcotest.(check bool) "untagged is a third value" true (c <> a && c <> b);
  Alcotest.(check bool) "initial distinct from tagged" true
    (State_tag.initial ~root <> State_tag.tagged ~root ~ctr:1 ~user:0);
  (* XOR register algebra *)
  Alcotest.(check string) "x ⊕ x = 0" State_tag.zero (State_tag.xor a a);
  Alcotest.(check string) "x ⊕ 0 = x" a (State_tag.xor a State_tag.zero);
  Alcotest.(check string) "associative"
    (State_tag.xor a (State_tag.xor b c))
    (State_tag.xor (State_tag.xor a b) c);
  Alcotest.check_raises "length mismatch" (Invalid_argument "State_tag.xor: length mismatch")
    (fun () -> ignore (State_tag.xor a "short"))

let suite =
  let quick name f = Alcotest.test_case name `Quick f in
  [
    quick "wire: integers" test_wire_integers;
    quick "wire: strings and lists" test_wire_strings_and_lists;
    quick "wire: underflow" test_wire_underflow;
    quick "wire: decode helper strictness" test_wire_decode_helper;
    quick "wire: binary safe" test_wire_binary_safe;
    quick "message: sizes positive" test_message_sizes_positive;
    quick "message: response includes VO size" test_response_size_includes_vo;
    quick "state tags: algebra and separation" test_state_tag_properties;
  ]
