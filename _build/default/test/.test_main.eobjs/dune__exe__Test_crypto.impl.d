test/test_crypto.ml: Alcotest Array Bytes Char Crypto Fun Gen List Printf QCheck QCheck_alcotest String
