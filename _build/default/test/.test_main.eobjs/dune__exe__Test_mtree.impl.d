test/test_mtree.ml: Alcotest Bytes Char Crypto Fun Gen Hashtbl List Mtree Printf QCheck QCheck_alcotest String
