test/test_vcs.ml: Alcotest Bytes Crypto List Printf Result Sim String Tcvs Vcs Vdiff
