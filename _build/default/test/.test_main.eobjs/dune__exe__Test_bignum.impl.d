test/test_bignum.ml: Alcotest Bignum Crypto List Printf QCheck QCheck_alcotest
