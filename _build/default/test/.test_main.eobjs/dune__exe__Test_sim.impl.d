test/test_sim.ml: Alcotest Array List Mtree Sim String
