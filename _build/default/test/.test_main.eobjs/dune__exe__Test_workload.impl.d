test/test_workload.ml: Alcotest Array Crypto Fun List Printf Workload
