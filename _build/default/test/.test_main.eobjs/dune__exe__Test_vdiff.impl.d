test/test_vdiff.ml: Alcotest Array Crypto List QCheck QCheck_alcotest String Vdiff
