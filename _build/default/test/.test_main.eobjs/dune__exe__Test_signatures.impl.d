test/test_signatures.ml: Alcotest Array Bytes Char Crypto Hashsig Lazy List Pki Printf Rsa String
