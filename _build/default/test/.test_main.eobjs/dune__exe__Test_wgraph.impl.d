test/test_wgraph.ml: Alcotest Format List QCheck QCheck_alcotest Wgraph
