test/test_protocols.ml: Adversary Alcotest Cvs Harness List Message Mtree Pki Printf Protocol2 Server Sim String Tcvs Vcs Vdiff Workload
