test/test_wire.ml: Alcotest Char Crypto Format List Mtree Printf State_tag String Tcvs Wire
