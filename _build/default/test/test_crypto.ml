(* Tests for the crypto substrate: SHA-256 against FIPS 180-4 vectors,
   HMAC against RFC 4231 vectors, hex codec, constant-time compare and
   the deterministic ChaCha20 PRNG. *)

let check_hex name expected got = Alcotest.(check string) name expected (Crypto.Hex.encode got)

(* ---- SHA-256 ------------------------------------------------------- *)

let test_sha_empty () =
  check_hex "empty string"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Crypto.Sha256.digest "")

let test_sha_abc () =
  check_hex "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Crypto.Sha256.digest "abc")

let test_sha_448bit () =
  check_hex "448-bit message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Crypto.Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha_896bit () =
  check_hex "896-bit message"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (Crypto.Sha256.digest
       "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
        ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")

let test_sha_million_a () =
  check_hex "one million 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Crypto.Sha256.digest (String.make 1_000_000 'a'))

let test_sha_incremental () =
  (* Feeding in arbitrary chunk sizes must equal one-shot hashing. *)
  let message = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let one_shot = Crypto.Sha256.digest message in
  List.iter
    (fun chunk ->
      let ctx = Crypto.Sha256.init () in
      let rec feed pos =
        if pos < String.length message then begin
          let len = min chunk (String.length message - pos) in
          Crypto.Sha256.feed ctx (String.sub message pos len);
          feed (pos + len)
        end
      in
      feed 0;
      Alcotest.(check string)
        (Printf.sprintf "chunk size %d" chunk)
        (Crypto.Hex.encode one_shot)
        (Crypto.Hex.encode (Crypto.Sha256.finalize ctx)))
    [ 1; 3; 7; 63; 64; 65; 128; 999 ]

let test_sha_digest_list () =
  Alcotest.(check string)
    "digest_list = digest of concatenation"
    (Crypto.Hex.encode (Crypto.Sha256.digest "foobarbaz"))
    (Crypto.Hex.encode (Crypto.Sha256.digest_list [ "foo"; "bar"; "baz" ]))

let test_sha_boundary_lengths () =
  (* Padding edge cases: messages near the 64-byte block boundary. *)
  List.iter
    (fun n ->
      let m = String.make n 'x' in
      let ctx = Crypto.Sha256.init () in
      Crypto.Sha256.feed ctx m;
      Alcotest.(check string)
        (Printf.sprintf "length %d" n)
        (Crypto.Hex.encode (Crypto.Sha256.digest m))
        (Crypto.Hex.encode (Crypto.Sha256.finalize ctx)))
    [ 54; 55; 56; 57; 63; 64; 65; 119; 120; 127; 128 ]

(* ---- HMAC (RFC 4231) ------------------------------------------------ *)

let test_hmac_rfc4231_case1 () =
  check_hex "RFC 4231 #1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Crypto.Hmac.mac ~key:(String.make 20 '\x0b') "Hi There")

let test_hmac_rfc4231_case2 () =
  check_hex "RFC 4231 #2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Crypto.Hmac.mac ~key:"Jefe" "what do ya want for nothing?")

let test_hmac_rfc4231_case3 () =
  check_hex "RFC 4231 #3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Crypto.Hmac.mac ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'))

let test_hmac_long_key () =
  (* RFC 4231 #6: key longer than the block size is hashed first. *)
  check_hex "RFC 4231 #6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Crypto.Hmac.mac ~key:(String.make 131 '\xaa')
       "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_verify () =
  let key = "secret" and msg = "message" in
  let tag = Crypto.Hmac.mac ~key msg in
  Alcotest.(check bool) "accepts valid tag" true (Crypto.Hmac.verify ~key msg ~tag);
  Alcotest.(check bool) "rejects wrong message" false (Crypto.Hmac.verify ~key "massage" ~tag);
  Alcotest.(check bool) "rejects wrong key" false (Crypto.Hmac.verify ~key:"other" msg ~tag);
  let flipped = Bytes.of_string tag in
  Bytes.set flipped 0 (Char.chr (Char.code (Bytes.get flipped 0) lxor 1));
  Alcotest.(check bool) "rejects flipped bit" false
    (Crypto.Hmac.verify ~key msg ~tag:(Bytes.to_string flipped))

let test_hmac_mac_list () =
  Alcotest.(check string)
    "mac_list = mac of concatenation"
    (Crypto.Hex.encode (Crypto.Hmac.mac ~key:"k" "abcdef"))
    (Crypto.Hex.encode (Crypto.Hmac.mac_list ~key:"k" [ "ab"; "cd"; "ef" ]))

(* ---- Hex ------------------------------------------------------------ *)

let test_hex_known () =
  Alcotest.(check string) "encode" "00ff10ab" (Crypto.Hex.encode "\x00\xff\x10\xab");
  Alcotest.(check string) "decode" "\x00\xff\x10\xab" (Crypto.Hex.decode "00ff10ab");
  Alcotest.(check string) "decode uppercase" "\xde\xad" (Crypto.Hex.decode "DEAD")

let test_hex_errors () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length") (fun () ->
      ignore (Crypto.Hex.decode "abc"));
  Alcotest.check_raises "bad char" (Invalid_argument "Hex.decode: invalid character 'g'")
    (fun () -> ignore (Crypto.Hex.decode "ag"))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex decode∘encode = id" ~count:500 QCheck.string (fun s ->
      Crypto.Hex.decode (Crypto.Hex.encode s) = s)

(* ---- Constant-time compare ----------------------------------------- *)

let test_ctime () =
  Alcotest.(check bool) "equal strings" true (Crypto.Ctime.equal "abcd" "abcd");
  Alcotest.(check bool) "unequal strings" false (Crypto.Ctime.equal "abcd" "abce");
  Alcotest.(check bool) "different lengths" false (Crypto.Ctime.equal "abc" "abcd");
  Alcotest.(check bool) "empty strings" true (Crypto.Ctime.equal "" "")

let prop_ctime_matches_equality =
  QCheck.Test.make ~name:"ctime agrees with (=)" ~count:500
    QCheck.(pair (string_of_size (Gen.int_bound 16)) (string_of_size (Gen.int_bound 16)))
    (fun (a, b) -> Crypto.Ctime.equal a b = (a = b))

(* ---- PRNG ----------------------------------------------------------- *)

let test_prng_determinism () =
  let a = Crypto.Prng.create ~seed:"seed" and b = Crypto.Prng.create ~seed:"seed" in
  Alcotest.(check string) "same seed, same stream" (Crypto.Prng.bytes a 256)
    (Crypto.Prng.bytes b 256)

let test_prng_seeds_differ () =
  let a = Crypto.Prng.create ~seed:"seed-1" and b = Crypto.Prng.create ~seed:"seed-2" in
  Alcotest.(check bool) "different seeds, different streams" false
    (Crypto.Prng.bytes a 64 = Crypto.Prng.bytes b 64)

let test_prng_split_independent () =
  let parent = Crypto.Prng.create ~seed:"seed" in
  let child1 = Crypto.Prng.split parent ~label:"a" in
  let child2 = Crypto.Prng.split parent ~label:"b" in
  let child1' = Crypto.Prng.split parent ~label:"a" in
  Alcotest.(check bool) "distinct labels differ" false
    (Crypto.Prng.bytes child1 32 = Crypto.Prng.bytes child2 32);
  let fresh = Crypto.Prng.split (Crypto.Prng.create ~seed:"seed") ~label:"a" in
  Alcotest.(check string) "same label is reproducible" (Crypto.Prng.bytes child1' 32)
    (Crypto.Prng.bytes fresh 32)

let test_prng_int_uniformity () =
  let g = Crypto.Prng.create ~seed:"uniformity" in
  let buckets = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Crypto.Prng.int g 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i count ->
      let expected = n / 10 in
      if abs (count - expected) > expected / 10 then
        Alcotest.failf "bucket %d has %d hits, expected about %d" i count expected)
    buckets

let test_prng_bounds () =
  let g = Crypto.Prng.create ~seed:"bounds" in
  for _ = 1 to 1000 do
    let v = Crypto.Prng.int g 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of range: %d" v;
    let w = Crypto.Prng.int_in g 5 9 in
    if w < 5 || w > 9 then Alcotest.failf "int_in out of range: %d" w;
    let f = Crypto.Prng.float g in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Crypto.Prng.int g 0))

let test_prng_exponential_mean () =
  let g = Crypto.Prng.create ~seed:"expo" in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Crypto.Prng.exponential g ~mean:5.0
  done;
  let mean = !total /. float_of_int n in
  if mean < 4.5 || mean > 5.5 then Alcotest.failf "exponential mean drifted: %f" mean

let test_prng_shuffle_permutes () =
  let g = Crypto.Prng.create ~seed:"shuffle" in
  let arr = Array.init 50 Fun.id in
  let copy = Array.copy arr in
  Crypto.Prng.shuffle g copy;
  Alcotest.(check bool) "same multiset" true
    (List.sort compare (Array.to_list copy) = Array.to_list arr);
  Alcotest.(check bool) "order changed" true (copy <> arr)

let test_prng_bernoulli_extremes () =
  let g = Crypto.Prng.create ~seed:"bern" in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Crypto.Prng.bernoulli g ~p:0.0);
    Alcotest.(check bool) "p=1 always" true (Crypto.Prng.bernoulli g ~p:1.0)
  done

let suite =
  let quick name f = Alcotest.test_case name `Quick f in
  [
    quick "sha256: empty" test_sha_empty;
    quick "sha256: abc" test_sha_abc;
    quick "sha256: 448-bit vector" test_sha_448bit;
    quick "sha256: 896-bit vector" test_sha_896bit;
    Alcotest.test_case "sha256: million a" `Slow test_sha_million_a;
    quick "sha256: incremental feeding" test_sha_incremental;
    quick "sha256: digest_list" test_sha_digest_list;
    quick "sha256: padding boundaries" test_sha_boundary_lengths;
    quick "hmac: rfc4231 case 1" test_hmac_rfc4231_case1;
    quick "hmac: rfc4231 case 2" test_hmac_rfc4231_case2;
    quick "hmac: rfc4231 case 3" test_hmac_rfc4231_case3;
    quick "hmac: long key" test_hmac_long_key;
    quick "hmac: verify accepts/rejects" test_hmac_verify;
    quick "hmac: mac_list" test_hmac_mac_list;
    quick "hex: known vectors" test_hex_known;
    quick "hex: error cases" test_hex_errors;
    QCheck_alcotest.to_alcotest prop_hex_roundtrip;
    quick "ctime: cases" test_ctime;
    QCheck_alcotest.to_alcotest prop_ctime_matches_equality;
    quick "prng: determinism" test_prng_determinism;
    quick "prng: seeds differ" test_prng_seeds_differ;
    quick "prng: split independence" test_prng_split_independent;
    quick "prng: uniformity" test_prng_int_uniformity;
    quick "prng: bounds" test_prng_bounds;
    quick "prng: exponential mean" test_prng_exponential_mean;
    quick "prng: shuffle permutes" test_prng_shuffle_permutes;
    quick "prng: bernoulli extremes" test_prng_bernoulli_extremes;
  ]
