let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67;
    71; 73; 79; 83; 89; 97; 101; 103; 107; 109; 113; 127; 131; 137; 139; 149;
    151; 157; 163; 167; 173; 179; 181; 191; 193; 197; 199; 211; 223; 227; 229;
    233; 239; 241; 251 ]

(* Decompose n - 1 as d * 2^s with d odd. *)
let decompose n_minus_1 =
  let rec go d s = if Nat.is_even d then go (Nat.shift_right d 1) (s + 1) else (d, s) in
  go n_minus_1 0

let miller_rabin_witness n n_minus_1 d s a =
  (* Returns true if [a] witnesses compositeness of [n]. *)
  let x = Nat.mod_pow ~base:a ~exp:d ~modulus:n in
  if Nat.equal x Nat.one || Nat.equal x n_minus_1 then false
  else begin
    let rec squares x i =
      if i >= s - 1 then true
      else begin
        let x = Nat.rem (Nat.mul x x) n in
        if Nat.equal x n_minus_1 then false else squares x (i + 1)
      end
    in
    squares x 0
  end

let is_probably_prime ?(rounds = 32) rng n =
  match Nat.to_int n with
  | Some v when v < 2 -> false
  | _ ->
      let divisible_by_small =
        List.exists
          (fun p ->
            let p_nat = Nat.of_int p in
            if Nat.compare n p_nat = 0 then false
            else Nat.is_zero (Nat.rem n p_nat))
          small_primes
      in
      let is_small_prime =
        match Nat.to_int n with
        | Some v -> List.mem v small_primes
        | None -> false
      in
      if is_small_prime then true
      else if divisible_by_small || Nat.is_even n then false
      else begin
        let n_minus_1 = Nat.pred n in
        let d, s = decompose n_minus_1 in
        let rec rounds_loop i =
          if i >= rounds then true
          else begin
            (* Uniform base in [2, n-2]. *)
            let a = Nat.add (Nat.random_below rng (Nat.sub n (Nat.of_int 3))) Nat.two in
            if miller_rabin_witness n n_minus_1 d s a then false
            else rounds_loop (i + 1)
          end
        in
        rounds_loop 0
      end

let generate ?rounds rng ~bits =
  if bits < 4 then invalid_arg "Prime.generate: need at least 4 bits";
  let rec attempt () =
    let candidate = Nat.random rng ~bits in
    (* Force full width (top two bits, so products of two such primes
       have exactly 2*bits bits) and oddness. *)
    let top = Nat.add (Nat.shift_left Nat.one (bits - 1)) (Nat.shift_left Nat.one (bits - 2)) in
    let candidate =
      let c = Nat.add (Nat.rem candidate (Nat.shift_left Nat.one (bits - 2))) top in
      if Nat.is_even c then Nat.succ c else c
    in
    if is_probably_prime ?rounds rng candidate then candidate else attempt ()
  in
  attempt ()
