(** Arbitrary-precision natural numbers, from scratch.

    The paper assumes a PKI with digital signatures (RFC 2459); since
    the sealed environment has no bignum or crypto packages, this module
    provides the arithmetic substrate for the RSA implementation in
    {!Rsa}. Numbers are non-negative; operations that would go negative
    raise.

    Representation: little-endian limb array in base 2^26 with no
    most-significant zero limbs (so representations are canonical and
    structural equality coincides with numeric equality). Products of
    two limbs fit comfortably in OCaml's 63-bit native int. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int option
(** [to_int n] is [Some i] if [n] fits in a native int. *)

val of_bytes_be : string -> t
(** Big-endian bytes to natural (leading zero bytes allowed). *)

val to_bytes_be : ?pad_to:int -> t -> string
(** Minimal big-endian encoding, left-padded with zero bytes to
    [pad_to] if given.
    @raise Invalid_argument if the value does not fit in [pad_to]. *)

val of_hex : string -> t
val to_hex : t -> string
val of_decimal : string -> t
(** @raise Invalid_argument on a non-digit character or empty string. *)

val to_decimal : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val bit_length : t -> int
(** Number of significant bits; [bit_length zero = 0]. *)

val test_bit : t -> int -> bool
val is_even : t -> bool

val add : t -> t -> t
val succ : t -> t

val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val pred : t -> t
(** @raise Invalid_argument on zero. *)

val mul : t -> t -> t
(** Schoolbook below a limb-count threshold, Karatsuba above it. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < b]
    (Knuth TAOCP vol. 2 Algorithm 4.3.1 D).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val mod_pow : base:t -> exp:t -> modulus:t -> t
(** [mod_pow ~base ~exp ~modulus] is [base^exp mod modulus] by
    left-to-right binary exponentiation.
    @raise Division_by_zero if [modulus] is zero. *)

val gcd : t -> t -> t

val mod_inverse : t -> modulus:t -> t option
(** [mod_inverse a ~modulus] is [Some x] with [a*x ≡ 1 (mod modulus)]
    when [gcd a modulus = 1], else [None]. *)

val random : Crypto.Prng.t -> bits:int -> t
(** Uniform value with at most [bits] bits. *)

val random_below : Crypto.Prng.t -> t -> t
(** Uniform in [0, bound). @raise Invalid_argument if bound is zero. *)

val pp : Format.formatter -> t -> unit
(** Prints the decimal rendering. *)
