lib/bignum/nat.mli: Crypto Format
