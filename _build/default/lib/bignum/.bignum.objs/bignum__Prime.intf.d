lib/bignum/prime.mli: Crypto Nat
