lib/bignum/nat.ml: Array Bytes Char Crypto Format List Printf Stdlib String
