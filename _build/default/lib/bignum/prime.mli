(** Probabilistic primality testing and prime generation for RSA key
    material. *)

val is_probably_prime : ?rounds:int -> Crypto.Prng.t -> Nat.t -> bool
(** Miller–Rabin with [rounds] random bases (default 32; error
    probability at most 4^-rounds) after trial division by small
    primes. *)

val generate : ?rounds:int -> Crypto.Prng.t -> bits:int -> Nat.t
(** [generate rng ~bits] returns a probable prime of exactly [bits]
    bits (top two bits set so RSA moduli have full width, low bit set).
    @raise Invalid_argument if [bits < 4]. *)
