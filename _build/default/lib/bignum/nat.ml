(* Little-endian limbs in base 2^26. The invariant maintained everywhere
   is that the most significant limb is non-zero (zero is [||]), so
   Array-level equality is numeric equality. 26-bit limbs keep every
   intermediate product within OCaml's 63-bit native int:
   2^26 * 2^26 + carries < 2^53. *)

type t = int array

let limb_bits = 26
let base = 1 lsl limb_bits
let limb_mask = base - 1
let zero : t = [||]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int i =
  if i < 0 then invalid_arg "Nat.of_int: negative";
  if i = 0 then zero
  else begin
    let rec limbs acc v = if v = 0 then List.rev acc else limbs ((v land limb_mask) :: acc) (v lsr limb_bits) in
    Array.of_list (limbs [] i)
  end

let one = of_int 1
let two = of_int 2
let is_zero a = Array.length a = 0

let to_int a =
  (* max_int has 62 bits: at most 3 limbs (78 bits) could overflow, so
     recompose carefully. *)
  let n = Array.length a in
  if n = 0 then Some 0
  else if n > 3 then None
  else begin
    let v = ref 0 and ok = ref true in
    for i = n - 1 downto 0 do
      if !v > max_int lsr limb_bits then ok := false
      else begin
        let shifted = !v lsl limb_bits in
        if shifted > max_int - a.(i) then ok := false else v := shifted + a.(i)
      end
    done;
    if !ok then Some !v else None
  end

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width w = if top lsr w = 0 then w else width (w + 1) in
    ((n - 1) * limb_bits) + width 1
  end

let test_bit a i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let is_even a = Array.length a = 0 || a.(0) land 1 = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let av = if i < la then a.(i) else 0 in
    let bv = if i < lb then b.(i) else 0 in
    let s = av + bv + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r.(lr - 1) <- !carry;
  normalize r

let succ a = add a one

let sub a b =
  let la = Array.length a and lb = Array.length b in
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bv = if i < lb then b.(i) else 0 in
    let d = a.(i) - bv - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize r

let pred a = sub a one

let mul_schoolbook a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let t = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- t land limb_mask;
        carry := t lsr limb_bits
      done;
      r.(i + lb) <- !carry
    done;
    normalize r
  end

let karatsuba_threshold = 32

(* Split a into (low [0,k), high [k,..)). *)
let split_at a k =
  let n = Array.length a in
  if n <= k then (a, zero)
  else (normalize (Array.sub a 0 k), Array.sub a k (n - k))

let shift_limbs a k =
  if is_zero a then zero
  else begin
    let n = Array.length a in
    let r = Array.make (n + k) 0 in
    Array.blit a 0 r k n;
    r
  end

let rec mul a b =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then
    mul_schoolbook a b
  else begin
    let k = (max la lb + 1) / 2 in
    let a0, a1 = split_at a k and b0, b1 = split_at b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add (add z0 (shift_limbs z1 k)) (shift_limbs z2 (2 * k))
  end

let shift_left a bits =
  if bits < 0 then invalid_arg "Nat.shift_left: negative shift";
  if is_zero a || bits = 0 then a
  else begin
    let limb_shift = bits / limb_bits and bit_shift = bits mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land limb_mask);
      r.(i + limb_shift + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let shift_right a bits =
  if bits < 0 then invalid_arg "Nat.shift_right: negative shift";
  if is_zero a || bits = 0 then a
  else begin
    let limb_shift = bits / limb_bits and bit_shift = bits mod limb_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let lr = la - limb_shift in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (a.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land limb_mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Short division by a single limb. *)
let divmod_limb a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, of_int !r)

(* Knuth TAOCP 4.3.1 Algorithm D, specialised to base 2^26. Requires
   len b >= 2 and a >= b. *)
let divmod_knuth a b =
  let n = Array.length b in
  let m = Array.length a - n in
  (* D1: normalise so the top limb of v is >= base/2. *)
  let s =
    let top = b.(n - 1) in
    let rec leading w = if top lsr w <> 0 then limb_bits - 1 - w else leading (w - 1) in
    leading (limb_bits - 1)
  in
  let v =
    let v = Array.make n 0 in
    for i = n - 1 downto 0 do
      let hi = b.(i) lsl s in
      let lo = if i > 0 && s > 0 then b.(i - 1) lsr (limb_bits - s) else 0 in
      v.(i) <- (hi land limb_mask) lor lo
    done;
    v
  in
  let u =
    let u = Array.make (m + n + 1) 0 in
    u.(m + n) <- (if s > 0 then a.(m + n - 1) lsr (limb_bits - s) else 0);
    for i = m + n - 1 downto 0 do
      let hi = a.(i) lsl s in
      let lo = if i > 0 && s > 0 then a.(i - 1) lsr (limb_bits - s) else 0 in
      u.(i) <- (hi land limb_mask) lor lo
    done;
    u
  in
  let q = Array.make (m + 1) 0 in
  for j = m downto 0 do
    (* D3: estimate qhat from the top two limbs. *)
    let t = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
    let qhat = ref (t / v.(n - 1)) and rhat = ref (t mod v.(n - 1)) in
    let rec adjust () =
      if
        !qhat >= base
        || !qhat * v.(n - 2) > (!rhat lsl limb_bits) lor u.(j + n - 2)
      then begin
        decr qhat;
        rhat := !rhat + v.(n - 1);
        if !rhat < base then adjust ()
      end
    in
    adjust ();
    (* D4: multiply and subtract. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr limb_bits;
      let d = u.(i + j) - (p land limb_mask) - !borrow in
      if d < 0 then begin
        u.(i + j) <- d + base;
        borrow := 1
      end
      else begin
        u.(i + j) <- d;
        borrow := 0
      end
    done;
    let d = u.(j + n) - !carry - !borrow in
    (* D5/D6: if the subtraction went negative, qhat was one too big. *)
    if d < 0 then begin
      u.(j + n) <- d + base;
      q.(j) <- !qhat - 1;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let sum = u.(i + j) + v.(i) + !carry in
        u.(i + j) <- sum land limb_mask;
        carry := sum lsr limb_bits
      done;
      u.(j + n) <- (u.(j + n) + !carry) land limb_mask
    end
    else begin
      u.(j + n) <- d;
      q.(j) <- !qhat
    end
  done;
  (* D8: denormalise the remainder. *)
  let r = normalize (Array.sub u 0 n) in
  (normalize q, shift_right r s)

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then divmod_limb a b.(0)
  else divmod_knuth a b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let mod_pow ~base:bse ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then zero
  else begin
    let nbits = bit_length exp in
    let result = ref one in
    let b = ref (rem bse modulus) in
    for i = 0 to nbits - 1 do
      if test_bit exp i then result := rem (mul !result !b) modulus;
      b := rem (mul !b !b) modulus
    done;
    !result
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* Signed value for the extended-Euclid coefficients. *)
type signed = { neg : bool; mag : t }

let signed_of_nat mag = { neg = false; mag }

let signed_sub x y =
  (* x - y with signs. *)
  match (x.neg, y.neg) with
  | false, true -> { neg = false; mag = add x.mag y.mag }
  | true, false -> { neg = true; mag = add x.mag y.mag }
  | false, false ->
      if compare x.mag y.mag >= 0 then { neg = false; mag = sub x.mag y.mag }
      else { neg = true; mag = sub y.mag x.mag }
  | true, true ->
      if compare y.mag x.mag >= 0 then { neg = false; mag = sub y.mag x.mag }
      else { neg = true; mag = sub x.mag y.mag }

let signed_mul_nat x n = { x with mag = mul x.mag n }

let mod_inverse a ~modulus =
  if is_zero modulus then raise Division_by_zero;
  let a = rem a modulus in
  if is_zero a then None
  else begin
    (* Iterative extended Euclid on (r0, r1) with Bezout coefficients
       (t0, t1) for [a]. *)
    let rec go r0 r1 t0 t1 =
      if is_zero r1 then
        if equal r0 one then begin
          let v = if t0.neg then sub modulus (rem t0.mag modulus) else rem t0.mag modulus in
          Some (rem v modulus)
        end
        else None
      else begin
        let q, r2 = divmod r0 r1 in
        let t2 = signed_sub t0 (signed_mul_nat t1 q) in
        go r1 r2 t1 t2
      end
    in
    go modulus a (signed_of_nat zero) (signed_of_nat one)
  end

let of_bytes_be s =
  let n = String.length s in
  let acc = ref zero in
  for i = 0 to n - 1 do
    acc := add (shift_left !acc 8) (of_int (Char.code s.[i]))
  done;
  !acc

let to_bytes_be ?pad_to a =
  let nbytes = (bit_length a + 7) / 8 in
  let body = Bytes.create nbytes in
  let v = ref a in
  for i = nbytes - 1 downto 0 do
    let limb = if Array.length !v > 0 then (!v).(0) else 0 in
    Bytes.set body i (Char.chr (limb land 0xff));
    v := shift_right !v 8
  done;
  let body = Bytes.unsafe_to_string body in
  match pad_to with
  | None -> body
  | Some w ->
      if nbytes > w then invalid_arg "Nat.to_bytes_be: value too wide for pad_to";
      String.make (w - nbytes) '\x00' ^ body

let of_hex h = of_bytes_be (Crypto.Hex.decode (if String.length h mod 2 = 1 then "0" ^ h else h))

let to_hex a =
  let s = Crypto.Hex.encode (to_bytes_be a) in
  if s = "" then "0" else s

let ten = of_int 10
let decimal_chunk = 1_000_000 (* < 2^26, so the short-division path applies *)

let to_decimal a =
  if is_zero a then "0"
  else begin
    let chunks = ref [] in
    let v = ref a in
    while not (is_zero !v) do
      let q, r = divmod !v (of_int decimal_chunk) in
      let r = match to_int r with Some i -> i | None -> assert false in
      chunks := r :: !chunks;
      v := q
    done;
    match !chunks with
    | [] -> assert false
    | first :: rest ->
        String.concat ""
          (string_of_int first :: List.map (Printf.sprintf "%06d") rest)
  end

let of_decimal s =
  if s = "" then invalid_arg "Nat.of_decimal: empty string";
  String.fold_left
    (fun acc c ->
      match c with
      | '0' .. '9' -> add (mul acc ten) (of_int (Char.code c - Char.code '0'))
      | _ -> invalid_arg "Nat.of_decimal: invalid character")
    zero s

let random rng ~bits =
  if bits <= 0 then invalid_arg "Nat.random: bits must be positive";
  let nbytes = (bits + 7) / 8 in
  let raw = Bytes.of_string (Crypto.Prng.bytes rng nbytes) in
  let excess = (8 * nbytes) - bits in
  Bytes.set raw 0 (Char.chr (Char.code (Bytes.get raw 0) land (0xff lsr excess)));
  of_bytes_be (Bytes.unsafe_to_string raw)

let random_below rng bound =
  if is_zero bound then invalid_arg "Nat.random_below: zero bound";
  let bits = bit_length bound in
  let rec draw () =
    let v = random rng ~bits in
    if compare v bound < 0 then v else draw ()
  in
  draw ()

let pp fmt a = Format.pp_print_string fmt (to_decimal a)
