(** CVS verbs over the authenticated database — the user-facing layer.

    The mapping (Section 2.1): a repository is a database whose keys
    are file paths and whose values are encoded {!Vcs.File_history}
    delta chains. `checkout` is a read request, `commit` a
    read-modify-write. Each verb is one or two database operations,
    each individually verified by whichever protocol the session runs.

    A {!session} wraps one user agent and the simulation engine behind
    a {e synchronous} facade: each call enqueues the operation and
    steps the simulation until the transaction completes (or an alarm
    fires). Other scripted users keep acting concurrently while the
    engine advances, so sessions still exhibit real interleavings. *)

type error =
  | Server_compromised of string
      (** the protocol terminated this user — the paper's "report an
          error" outcome *)
  | Corrupt_history of string  (** undecodable/ill-formed stored value *)
  | Conflict of string  (** commit raced a newer revision; update first *)
  | Timeout  (** simulation budget exhausted without completion *)

val pp_error : Format.formatter -> error -> unit

type session

val session :
  engine:Message.t Sim.Engine.t ->
  base:User_base.t ->
  session
(** Wrap an already-registered protocol user. *)

val checkout : session -> path:string -> (string * Vcs.File_history.t, error) result
(** Head content and full history of a file ([""], empty history if the
    path does not exist yet). Also records the checkout in the
    session's local workspace. *)

val commit :
  session -> path:string -> content:string -> log:string -> (int, error) result
(** Commit new content; returns the new revision number. Fails with
    [Conflict] if the repository head moved past the session's base
    revision for that path (run {!update} first), mirroring CVS's
    up-to-date check. *)

val update : session -> path:string -> (string, error) result
(** Merge upstream changes into the locally checked-out file (CVS
    `update`); returns the merged content. *)

val log : session -> path:string -> ((int * int * int * string) list, error) result
(** `cvs log`: (revision, author, round, message), newest first. *)

val annotate : session -> path:string -> ((string * int) list, error) result
(** `cvs annotate`: each head line with the revision that wrote it. *)

val list_files : session -> prefix:string -> (string list, error) result
(** Paths in the repository under [prefix] (a verified range query). *)

val workspace : session -> Vcs.Workspace.t
val user : session -> int

(** {2 Working-copy verbs} *)

val edit : session -> path:string -> content:string -> (unit, error) result
(** Change the local (checked-out) copy without touching the server. *)

val commit_workspace : session -> path:string -> log:string -> (int, error) result
(** Commit the workspace's local content of [path] (checkout + edit +
    commit_workspace is the full CVS working cycle). *)

val diff_local : session -> path:string -> (Vdiff.Patch.t, error) result
(** `cvs diff`: patch from the checked-out base to the local content. *)

val checkout_at : session -> path:string -> revision:int -> (string, error) result
(** Content of [path] at an older revision (read-only; the workspace
    keeps tracking head). *)

val commit_many :
  session -> files:(string * string) list -> log:string -> (int list, error) result
(** Commit several files under one log message; returns the new
    revision numbers in order. The commits are sequential database
    operations (each verified), not an atomic multi-key transaction —
    matching CVS, whose multi-file commits are not atomic either. *)

val commit_atomic :
  session -> files:(string * string) list -> log:string -> (int list, error) result
(** Like {!commit_many} but as {e one} verified multi-key database
    operation ([Vo.Set_many]): either every file moves to its new
    revision or none does, and the whole commit is a single state
    transition in the protocol (one counter increment, one register
    update). This goes beyond CVS — it is the "compare a transaction"
    granularity the paper's database framing suggests. Up-to-date
    checks apply to all files before anything is written. *)

(** {2 Tags} *)

val tag : session -> name:string -> (int, error) result
(** `cvs tag`: snapshot every file's current head revision under
    [name]; returns how many files the tag covers. Tags live in the
    same authenticated database under a reserved [tag!] key prefix, so
    they are protected by the same protocol. *)

val tagged_files : session -> name:string -> ((string * int) list, error) result
(** The (path, revision) pairs a tag recorded. *)

val checkout_tag : session -> name:string -> path:string -> (string, error) result
(** Content of [path] as of the tagged revision. *)
