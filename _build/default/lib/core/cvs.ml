module Vo = Mtree.Vo

type error =
  | Server_compromised of string
  | Corrupt_history of string
  | Conflict of string
  | Timeout

let pp_error fmt = function
  | Server_compromised reason -> Format.fprintf fmt "server compromised: %s" reason
  | Corrupt_history reason -> Format.fprintf fmt "corrupt history: %s" reason
  | Conflict reason -> Format.fprintf fmt "conflict: %s" reason
  | Timeout -> Format.pp_print_string fmt "simulation budget exhausted"

type session = {
  engine : Message.t Sim.Engine.t;
  base : User_base.t;
  mutable workspace : Vcs.Workspace.t;
}

let session ~engine ~base = { engine; base; workspace = Vcs.Workspace.empty }
let workspace s = s.workspace
let user s = User_base.user s.base

let op_budget = 5000

let my_alarm_reason s =
  let me = Sim.Id.User (User_base.user s.base) in
  Sim.Engine.alarms s.engine
  |> List.find_opt (fun (a : Sim.Engine.alarm_record) -> Sim.Id.equal a.agent me)
  |> Option.map (fun (a : Sim.Engine.alarm_record) -> a.reason)

(* Issue one database operation through the protocol agent and wait,
   stepping the whole simulation, until it completes. *)
let perform s (op : Vo.op) : (Vo.answer, error) result =
  if User_base.terminated s.base then
    Error (Server_compromised (Option.value (my_alarm_reason s) ~default:"terminated"))
  else begin
    let trace = User_base.trace s.base in
    let before = List.length (Sim.Trace.completed trace) in
    User_base.enqueue_intent s.base ~round:(Sim.Engine.round s.engine) ~op;
    let finished () =
      User_base.terminated s.base
      || (User_base.pending_intents s.base = 0 && User_base.in_flight_op s.base = None)
    in
    let ok = Sim.Engine.run_until s.engine ~max_rounds:op_budget finished in
    if User_base.terminated s.base then
      Error (Server_compromised (Option.value (my_alarm_reason s) ~default:"terminated"))
    else if not ok then Error Timeout
    else begin
      let mine =
        Sim.Trace.completed trace
        |> List.filter (fun (tx : Sim.Trace.transaction) -> tx.user = User_base.user s.base)
      in
      (* The freshly completed transaction is ours and is the last one. *)
      match List.rev mine with
      | tx :: _ when List.length (Sim.Trace.completed trace) > before -> (
          match tx.answer with
          | Some answer -> Ok answer
          | None -> Error Timeout)
      | _ -> Error Timeout
    end
  end

let fetch_history s ~path =
  match perform s (Vo.Get path) with
  | Error _ as e -> e |> Result.map (fun _ -> assert false)
  | Ok (Vo.Value None) -> Ok Vcs.File_history.empty
  | Ok (Vo.Value (Some encoded)) -> (
      match Vcs.File_history.decode encoded with
      | Some history -> Ok history
      | None -> Error (Corrupt_history path))
  | Ok (Vo.Updated | Vo.Entries _) -> Error (Corrupt_history "unexpected answer shape")

let checkout s ~path =
  match fetch_history s ~path with
  | Error e -> Error e
  | Ok history ->
      s.workspace <- Vcs.Workspace.checkout s.workspace ~path history;
      Ok (Vcs.File_history.head_content history, history)

let commit s ~path ~content ~log =
  if Vcs.Tag_snapshot.is_tag_key path then
    Error
      (Conflict
         (Printf.sprintf "%S is a reserved path prefix" Vcs.Tag_snapshot.reserved_prefix))
  else
  match fetch_history s ~path with
  | Error e -> Error e
  | Ok history -> (
      let head = Vcs.File_history.head_revision history in
      let base_ok =
        match Vcs.Workspace.find s.workspace path with
        | None -> true (* first touch: treated as `cvs add` *)
        | Some st -> st.base_revision = head
      in
      if not base_ok then
        Error
          (Conflict
             (Printf.sprintf "%s: repository is at revision %d, your base is older" path head))
      else begin
        let history' =
          Vcs.File_history.commit history ~author:(user s) ~round:(Sim.Engine.round s.engine)
            ~log ~content
        in
        match perform s (Vo.Set (path, Vcs.File_history.encode history')) with
        | Error e -> Error e
        | Ok _ ->
            s.workspace <- Vcs.Workspace.checkout s.workspace ~path history';
            Ok (Vcs.File_history.head_revision history')
      end)

let update s ~path =
  match fetch_history s ~path with
  | Error e -> Error e
  | Ok history -> (
      match Vcs.Workspace.update s.workspace ~path history with
      | Vcs.Workspace.Conflict { reason; _ } -> Error (Conflict reason)
      | Vcs.Workspace.Updated ws ->
          s.workspace <- ws;
          let content =
            match Vcs.Workspace.find ws path with
            | Some st -> st.local_content
            | None -> ""
          in
          Ok content)

let log s ~path =
  Result.map Vcs.File_history.log_entries (fetch_history s ~path)

let annotate s ~path = Result.map Vcs.File_history.annotate (fetch_history s ~path)

let list_entries s ~prefix =
  (* Range over [prefix, prefix ^ 0xff...]: keys are ASCII paths. *)
  let hi = prefix ^ String.make 8 '\xff' in
  match perform s (Vo.Range (prefix, hi)) with
  | Error _ as e -> e |> Result.map (fun _ -> assert false)
  | Ok (Vo.Entries entries) ->
      Ok (List.filter (fun (k, _) -> not (Vcs.Tag_snapshot.is_tag_key k)) entries)
  | Ok (Vo.Value _ | Vo.Updated) -> Error (Corrupt_history "unexpected answer shape")

let list_files s ~prefix = Result.map (List.map fst) (list_entries s ~prefix)

(* ---- working-copy verbs ------------------------------------------------ *)

let edit s ~path ~content =
  match Vcs.Workspace.edit s.workspace ~path ~content with
  | ws ->
      s.workspace <- ws;
      Ok ()
  | exception Not_found ->
      Error (Conflict (Printf.sprintf "%s is not checked out" path))

let commit_workspace s ~path ~log =
  match Vcs.Workspace.commit_content s.workspace ~path with
  | None -> Error (Conflict (Printf.sprintf "%s is not checked out" path))
  | Some content -> commit s ~path ~content ~log

let diff_local s ~path =
  match Vcs.Workspace.find s.workspace path with
  | None -> Error (Conflict (Printf.sprintf "%s is not checked out" path))
  | Some st -> Ok (Vdiff.Patch.make ~old_:st.base_content ~new_:st.local_content)

let checkout_at s ~path ~revision =
  match fetch_history s ~path with
  | Error e -> Error e
  | Ok history -> (
      match Vcs.File_history.content_at history revision with
      | Ok content -> Ok content
      | Error reason -> Error (Corrupt_history reason))

let commit_many s ~files ~log =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (path, content) :: rest -> (
        match commit s ~path ~content ~log with
        | Ok rev -> go (rev :: acc) rest
        | Error e -> Error e)
  in
  go [] files

let commit_atomic s ~files ~log =
  if files = [] then Ok []
  else if List.exists (fun (p, _) -> Vcs.Tag_snapshot.is_tag_key p) files then
    Error
      (Conflict
         (Printf.sprintf "%S is a reserved path prefix" Vcs.Tag_snapshot.reserved_prefix))
  else begin
    (* Phase 1: fetch all histories and run the up-to-date checks. *)
    let rec fetch acc = function
      | [] -> Ok (List.rev acc)
      | (path, content) :: rest -> (
          match fetch_history s ~path with
          | Error e -> Error e
          | Ok history ->
              let head = Vcs.File_history.head_revision history in
              let base_ok =
                match Vcs.Workspace.find s.workspace path with
                | None -> true
                | Some st -> st.base_revision = head
              in
              if not base_ok then
                Error
                  (Conflict
                     (Printf.sprintf "%s: repository is at revision %d, your base is older"
                        path head))
              else fetch ((path, content, history) :: acc) rest)
    in
    match fetch [] files with
    | Error e -> Error e
    | Ok resolved -> (
        (* Phase 2: one multi-key update. *)
        let updated =
          List.map
            (fun (path, content, history) ->
              ( path,
                Vcs.File_history.commit history ~author:(user s)
                  ~round:(Sim.Engine.round s.engine) ~log ~content ))
            resolved
        in
        let op =
          Vo.Set_many (List.map (fun (p, h) -> (p, Vcs.File_history.encode h)) updated)
        in
        match perform s op with
        | Error e -> Error e
        | Ok _ ->
            List.iter
              (fun (path, history) ->
                s.workspace <- Vcs.Workspace.checkout s.workspace ~path history)
              updated;
            Ok (List.map (fun (_, h) -> Vcs.File_history.head_revision h) updated))
  end

(* ---- tags --------------------------------------------------------------- *)

let tag s ~name =
  match list_entries s ~prefix:"" with
  | Error e -> Error e
  | Ok entries -> (
      let snapshot =
        List.filter_map
          (fun (path, encoded) ->
            Option.map
              (fun h -> (path, Vcs.File_history.head_revision h))
              (Vcs.File_history.decode encoded))
          entries
      in
      match
        perform s (Vo.Set (Vcs.Tag_snapshot.key name, Vcs.Tag_snapshot.encode snapshot))
      with
      | Error e -> Error e
      | Ok _ -> Ok (List.length snapshot))

let tagged_files s ~name =
  match perform s (Vo.Get (Vcs.Tag_snapshot.key name)) with
  | Error _ as e -> e |> Result.map (fun _ -> assert false)
  | Ok (Vo.Value None) -> Error (Conflict (Printf.sprintf "no such tag %S" name))
  | Ok (Vo.Value (Some encoded)) -> (
      match Vcs.Tag_snapshot.decode encoded with
      | Some entries -> Ok entries
      | None -> Error (Corrupt_history ("tag " ^ name)))
  | Ok (Vo.Updated | Vo.Entries _) -> Error (Corrupt_history "unexpected answer shape")

let checkout_tag s ~name ~path =
  match tagged_files s ~name with
  | Error e -> Error e
  | Ok entries -> (
      match List.assoc_opt path entries with
      | None -> Error (Conflict (Printf.sprintf "%s is not covered by tag %S" path name))
      | Some revision -> checkout_at s ~path ~revision)
