(** Protocol I (Section 4.2): signed root digests + counter, with a
    synchronisation over the broadcast channel every k operations.

    Per operation, the user
    + replays the verification object to recover [M(D)] and [M(D')],
    + checks the server's stored signature [sig_j(h(M(D) ‖ ctr))] is
      legitimate — signed by the claimed last user [j] under the PKI,
    + checks the claimed answer matches the replayed answer,
    + returns [sign_i(h(M(D') ‖ ctr+1))] to the server (the message the
      server is blocked on),
    + updates [lctrᵢ] and [gctrᵢ ← ctr + 1].

    The first user to complete [k] operations since the last sync
    announces sync-up; users broadcast [lctrᵢ]; user [i] reports
    success iff [gctrᵢ = Σ lctrₖ]; if nobody succeeds, everyone
    terminates and reports the error (Theorem 4.1: k-bounded deviation
    detection with constant per-operation overhead). *)

type config = {
  n : int;  (** number of users *)
  k : int;  (** sync period (operations) *)
  initial_root : string;  (** M(D₀), common knowledge *)
  elected_signer : int;  (** user whose signature seeds ctr = 0 *)
}

type t

val create :
  config ->
  user:int ->
  engine:Message.t Sim.Engine.t ->
  trace:Sim.Trace.t ->
  keyring:Pki.Keyring.t ->
  signer:Pki.Signer.t ->
  t
(** Registers the agent with the engine under [User user]. *)

val base : t -> User_base.t
val lctr : t -> int
val gctr : t -> int
val syncs_completed : t -> int

val initial_signature : signer:Pki.Signer.t -> root:string -> string
(** The elected user's signature over [h(M(D₀) ‖ 0)] that initialises
    the server (protocol initialisation step). *)
