lib/core/token_user.ml: Crypto Format List Message Mtree Pki Printf Sim State_tag User_base
