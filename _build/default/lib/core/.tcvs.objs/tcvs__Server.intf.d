lib/core/server.mli: Adversary Message Sim
