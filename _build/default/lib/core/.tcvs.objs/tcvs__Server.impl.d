lib/core/server.ml: Adversary Hashtbl List Message Mtree Queue Sim Stdlib
