lib/core/harness.ml: Adversary Array Crypto Fun Hashtbl List Message Mtree Pki Plain_user Printf Protocol1 Protocol2 Protocol3 Server Sim Token_user User_base Workload
