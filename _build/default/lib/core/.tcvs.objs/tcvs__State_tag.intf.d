lib/core/state_tag.mli:
