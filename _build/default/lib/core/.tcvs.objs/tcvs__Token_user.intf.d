lib/core/token_user.mli: Message Pki Sim User_base
