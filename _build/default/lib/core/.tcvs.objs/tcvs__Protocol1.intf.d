lib/core/protocol1.mli: Message Pki Sim User_base
