lib/core/protocol2.mli: Message Sim User_base
