lib/core/protocol3.mli: Message Pki Sim User_base
