lib/core/sync_session.ml: Hashtbl List Stdlib
