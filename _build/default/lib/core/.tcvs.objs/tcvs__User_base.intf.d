lib/core/user_base.mli: Message Mtree Sim
