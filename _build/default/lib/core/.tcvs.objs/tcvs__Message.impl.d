lib/core/message.ml: Format List Mtree Printf String
