lib/core/cvs.ml: Format List Message Mtree Option Printf Result Sim String User_base Vcs Vdiff
