lib/core/adversary.ml: Format List Printf String
