lib/core/plain_user.mli: Message Sim User_base
