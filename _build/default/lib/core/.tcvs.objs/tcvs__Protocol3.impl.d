lib/core/protocol3.ml: Format Fun List Logs Message Mtree Option Pki Printf Sim State_tag User_base
