lib/core/state_tag.ml: Bytes Char Crypto String
