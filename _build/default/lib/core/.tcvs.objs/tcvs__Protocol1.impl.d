lib/core/protocol1.ml: Format List Message Mtree Pki Printf Sim State_tag Sync_session User_base
