lib/core/plain_user.ml: Message Mtree Sim User_base
