lib/core/harness.mli: Adversary Mtree Pki Sim Workload
