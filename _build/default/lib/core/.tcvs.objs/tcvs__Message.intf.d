lib/core/message.mli: Format Mtree
