lib/core/adversary.mli: Format
