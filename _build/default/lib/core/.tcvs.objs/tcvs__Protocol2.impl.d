lib/core/protocol2.ml: Format List Message Mtree Printf Sim State_tag Sync_session User_base
