lib/core/cvs.mli: Format Message Sim User_base Vcs Vdiff
