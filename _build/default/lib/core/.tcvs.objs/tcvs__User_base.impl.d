lib/core/user_base.ml: List Message Mtree Option Printf Sim Stdlib
