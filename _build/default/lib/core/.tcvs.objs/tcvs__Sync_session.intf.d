lib/core/sync_session.mli:
