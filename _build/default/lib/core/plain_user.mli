(** The unverified baseline: a user of a {e trusted} CVS.

    Issues operations and believes every answer — no verification
    object replay, no signatures, no registers. This is the cost floor
    every protocol's overhead is measured against in the
    `overhead-ops` experiment, and the victim model in the attack
    demonstrations (it never detects anything). *)

type t

val create :
  user:int ->
  engine:Message.t Sim.Engine.t ->
  trace:Sim.Trace.t ->
  t

val base : t -> User_base.t
