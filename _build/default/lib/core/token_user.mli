(** The token-passing baseline of Section 2.2.3.

    Users act only in pre-specified slots, round-robin: slot [s]
    (rounds [s·slot_len .. (s+1)·slot_len)) belongs to user
    [s mod n]. In its slot a user fetches the head of the server's
    hash-chained log of signed turn records, verifies it (signature,
    chain position, root digest), performs at most one pending
    operation — or signs a {e null record} if it has nothing to do —
    and stores the new signed record.

    Because exactly one record is produced per slot, the head record's
    counter must equal [slot - 1]; any drop, fork or replay by the
    server breaks either that equality or a signature and is detected
    at the very next slot. The price is the paper's motivating
    workload-preservation failure: a user with two back-to-back
    operations waits a full rotation of null records — measured by the
    `wp-baseline` experiment. *)

type config = {
  n : int;
  slot_len : int;  (** rounds per slot; must cover one round trip (≥ 3) *)
  initial_root : string;
}

type t

val create :
  config ->
  user:int ->
  engine:Message.t Sim.Engine.t ->
  trace:Sim.Trace.t ->
  keyring:Pki.Keyring.t ->
  signer:Pki.Signer.t ->
  t

val base : t -> User_base.t
val turns_taken : t -> int
val null_turns : t -> int
