(** The hashed state identifiers the protocols exchange and accumulate.

    Protocol II's correctness hinges on what exactly gets hashed into a
    state tag: Figure 3 shows that tagging states with
    [h(M(D) ‖ ctr)] alone lets a malicious server replay states (even
    total degrees cancel in the XOR registers), while adding the user
    id — [h(M(D) ‖ ctr ‖ j)] — forces in-degree 1 and rescues Lemma
    4.1. Both variants are provided so the `abl-ctr-tag` ablation can
    measure the difference; every hash is domain-separated and
    length-framed. *)

val initial : root:string -> string
(** Tag of the initial database state [s = h(M(D₀) ‖ 1)] — the
    distinguished source vertex of the transition graph. *)

val tagged : root:string -> ctr:int -> user:int -> string
(** [h(M(D) ‖ ctr ‖ j)]: the state reached by operation number [ctr],
    performed by [user] — Protocol II's (fixed) tag. *)

val untagged : root:string -> ctr:int -> string
(** [h(M(D) ‖ ctr)]: the broken variant of Figure 3, for the
    ablation. *)

val root_sig_message : root:string -> ctr:int -> string
(** The byte string users sign in Protocol I: [h(M(D) ‖ ctr)]. *)

val backup_message : epoch:int -> sigma:string -> last:string -> gctr:int -> string
(** The byte string users sign over their per-epoch register backup in
    Protocol III. *)

val token_record_message :
  prev_digest:string -> root:string -> ctr:int -> user:int -> op_digest:string -> string
(** The byte string signed for each record of the token-passing
    baseline's hash-chained log. *)

val xor : string -> string -> string
(** Byte-wise XOR of two equal-length strings (32-byte register
    arithmetic). @raise Invalid_argument on length mismatch. *)

val zero : string
(** The all-zero 32-byte register initial value. *)
