let u64_bytes v =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i (Char.chr ((v lsr (8 * (7 - i))) land 0xff))
  done;
  Bytes.unsafe_to_string b

let hash_parts tag parts =
  (* Length framing via the digest_list on framed parts: each part is
     itself fixed-layout (tag, 32-byte root, 8-byte ints), so plain
     concatenation is already injective per tag. *)
  Crypto.Sha256.digest_list (tag :: parts)

let initial ~root = hash_parts "tcvs-state-init" [ root; u64_bytes 1 ]
let tagged ~root ~ctr ~user = hash_parts "tcvs-state" [ root; u64_bytes ctr; u64_bytes user ]
let untagged ~root ~ctr = hash_parts "tcvs-state-untagged" [ root; u64_bytes ctr ]
let root_sig_message ~root ~ctr = hash_parts "tcvs-rootsig" [ root; u64_bytes ctr ]

let backup_message ~epoch ~sigma ~last ~gctr =
  hash_parts "tcvs-backup" [ u64_bytes epoch; sigma; last; u64_bytes gctr ]

let token_record_message ~prev_digest ~root ~ctr ~user ~op_digest =
  hash_parts "tcvs-token"
    [ prev_digest; root; u64_bytes ctr; u64_bytes user; op_digest ]

let xor a b =
  if String.length a <> String.length b then invalid_arg "State_tag.xor: length mismatch";
  String.init (String.length a) (fun i -> Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let zero = String.make 32 '\x00'
