type t = { base : User_base.t }

let base t = t.base

let create ~user ~engine ~trace =
  let t = { base = User_base.create ~user ~engine ~trace } in
  let on_message ~round ~src msg =
    match (src, msg) with
    | Sim.Id.Server, Message.Response { answer; vo; _ } -> (
        match User_base.in_flight_op t.base with
        | None -> ()
        | Some op ->
            (* Replay the VO purely to record the claimed state
               transition for the ground-truth oracle; an unverified
               user acts on none of it. *)
            let roots =
              match Mtree.Vo.apply vo op with
              | Ok (_, old_root, new_root) -> Some (old_root, new_root)
              | Error _ -> None
            in
            User_base.complete t.base ~round ~answer ?roots ())
    | _, _ -> ()
  in
  let on_activate ~round =
    User_base.check_timeout t.base ~round;
    if not (User_base.terminated t.base) then
      ignore (User_base.issue t.base ~round ~piggyback:[])
  in
  Sim.Engine.register engine (Sim.Id.User user) { on_message; on_activate };
  t
