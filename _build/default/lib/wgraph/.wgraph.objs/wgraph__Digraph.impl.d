lib/wgraph/digraph.ml: Format Hashtbl List Map String
