lib/wgraph/digraph.mli: Format
