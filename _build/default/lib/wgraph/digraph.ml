module Vertex_map = Map.Make (String)

(* Adjacency as successor lists (with multiplicity); in-degrees kept
   alongside so Lemma 4.1 checks are linear. *)
type t = {
  succ : string list Vertex_map.t;
  in_deg : int Vertex_map.t;
}

let empty = { succ = Vertex_map.empty; in_deg = Vertex_map.empty }

let add_vertex t v =
  {
    succ = (if Vertex_map.mem v t.succ then t.succ else Vertex_map.add v [] t.succ);
    in_deg = (if Vertex_map.mem v t.in_deg then t.in_deg else Vertex_map.add v 0 t.in_deg);
  }

let add_edge t ~src ~dst =
  let t = add_vertex (add_vertex t src) dst in
  {
    succ = Vertex_map.add src (dst :: Vertex_map.find src t.succ) t.succ;
    in_deg = Vertex_map.add dst (Vertex_map.find dst t.in_deg + 1) t.in_deg;
  }

let vertices t = Vertex_map.bindings t.succ |> List.map fst
let is_empty t = Vertex_map.is_empty t.succ

let edges t =
  Vertex_map.bindings t.succ
  |> List.concat_map (fun (src, dsts) -> List.map (fun dst -> (src, dst)) dsts)

let vertex_count t = Vertex_map.cardinal t.succ
let edge_count t = List.length (edges t)
let successors t v = try Vertex_map.find v t.succ with Not_found -> []
let out_degree t v = List.length (successors t v)
let in_degree t v = try Vertex_map.find v t.in_deg with Not_found -> 0
let total_degree t v = in_degree t v + out_degree t v

let has_cycle t =
  (* Colours: unvisited (absent), 1 = on stack, 2 = done. *)
  let colour = Hashtbl.create 16 in
  let rec visit v =
    match Hashtbl.find_opt colour v with
    | Some 1 -> true
    | Some _ -> false
    | None ->
        Hashtbl.replace colour v 1;
        let found = List.exists visit (successors t v) in
        Hashtbl.replace colour v 2;
        found
  in
  List.exists visit (vertices t)

let is_directed_path t =
  if is_empty t then true
  else begin
    let n = vertex_count t in
    if edge_count t <> n - 1 then false
    else begin
      match List.filter (fun v -> in_degree t v = 0) (vertices t) with
      | [ start ] ->
          (* Walk from the unique source; a simple path visits each
             vertex once and never branches. *)
          let rec walk v seen =
            match successors t v with
            | [] -> seen = n
            | [ next ] -> (not (in_degree t next > 1)) && walk next (seen + 1)
            | _ :: _ :: _ -> false
          in
          walk start 1
      | [] | _ :: _ :: _ -> false
    end
  end

module Lemma41 = struct
  type failure =
    | Isolated_vertex of string
    | In_degree_exceeded of string
    | Cycle
    | Odd_degree_count of int
    | No_source

  let pp_failure fmt = function
    | Isolated_vertex v -> Format.fprintf fmt "P1 violated: isolated vertex %s" v
    | In_degree_exceeded v -> Format.fprintf fmt "P2 violated: in-degree > 1 at %s" v
    | Cycle -> Format.pp_print_string fmt "P3 violated: directed cycle"
    | Odd_degree_count n ->
        Format.fprintf fmt "P4 violated: %d vertices of odd total degree (want 2)" n
    | No_source ->
        Format.pp_print_string fmt "P4 violated: no odd-degree vertex has in-degree 0"

  let check t =
    if is_empty t then Ok ()
    else begin
      let vs = vertices t in
      match List.find_opt (fun v -> total_degree t v = 0) vs with
      | Some v -> Error (Isolated_vertex v)
      | None -> (
          match List.find_opt (fun v -> in_degree t v > 1) vs with
          | Some v -> Error (In_degree_exceeded v)
          | None ->
              if has_cycle t then Error Cycle
              else begin
                let odd = List.filter (fun v -> total_degree t v mod 2 = 1) vs in
                match odd with
                | [ a; b ] ->
                    if in_degree t a = 0 || in_degree t b = 0 then Ok () else Error No_source
                | _ -> Error (Odd_degree_count (List.length odd))
              end)
    end
end
