(** Directed multigraphs over string-labelled vertices.

    Protocol II's correctness argument (Lemma 4.1) views the states of
    the database as vertices — labels are the hashes
    h(M(D) ‖ ctr ‖ user) — and every verified transition as an edge.
    This module provides the graph and the exact property checks of the
    lemma; the `fig3-replay` experiment builds the paper's Figure 3
    graph with it and shows where the untagged scheme breaks down. *)

type t

val empty : t
val add_vertex : t -> string -> t
(** Idempotent. *)

val add_edge : t -> src:string -> dst:string -> t
(** Adds both endpoints as needed. Parallel edges are kept (the Figure
    3 attack depends on multigraph behaviour). *)

val vertices : t -> string list
(** Sorted. *)

val edges : t -> (string * string) list
val vertex_count : t -> int
val edge_count : t -> int
val in_degree : t -> string -> int
val out_degree : t -> string -> int
val total_degree : t -> string -> int
val successors : t -> string -> string list
val is_empty : t -> bool

val has_cycle : t -> bool
(** Directed cycle detection (self-loops and parallel edges included). *)

val is_directed_path : t -> bool
(** Brute-force check that the whole graph is one simple directed path
    covering every vertex exactly once — the conclusion of Lemma 4.1,
    used to cross-validate {!Lemma41.check} in tests. Vacuously true
    for the empty graph; a single vertex with no edges is a path. *)

(** Lemma 4.1's four premises, reported individually so experiments can
    show which one an attack violates. *)
module Lemma41 : sig
  type failure =
    | Isolated_vertex of string  (** violates P1 *)
    | In_degree_exceeded of string  (** violates P2 *)
    | Cycle  (** violates P3 *)
    | Odd_degree_count of int  (** violates P4: not exactly two *)
    | No_source  (** violates P4: neither odd vertex has indegree 0 *)

  val check : t -> (unit, failure) result
  (** [Ok ()] iff P1–P4 all hold, which by the lemma implies the graph
      is a directed path. *)

  val pp_failure : Format.formatter -> failure -> unit
end
