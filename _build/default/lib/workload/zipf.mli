(** Zipf-distributed sampling over ranks 0..n-1.

    CVS file popularity is heavily skewed — a few headers and build
    files receive most commits while the long tail is rarely touched —
    so workload generation samples files from a Zipf distribution with
    exponent [s] ([s = 0] degenerates to uniform). Sampling uses a
    precomputed CDF and binary search. *)

type t

val create : n:int -> s:float -> t
(** @raise Invalid_argument if [n <= 0] or [s < 0]. *)

val sample : t -> Crypto.Prng.t -> int
val support : t -> int
val probability : t -> int -> float
(** Mass of a rank (for test assertions). *)
