lib/workload/zipf.ml: Array Crypto Float
