lib/workload/schedule.mli: Format
