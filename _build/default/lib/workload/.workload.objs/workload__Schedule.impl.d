lib/workload/schedule.ml: Crypto Format Fun List Printf Stdlib Zipf
