lib/workload/zipf.mli: Crypto
