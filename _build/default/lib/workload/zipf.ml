type t = { cdf : float array; pmf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0. then invalid_arg "Zipf.create: s must be non-negative";
  let weights = Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0. weights in
  let pmf = Array.map (fun w -> w /. total) weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cdf.(i) <- !acc)
    pmf;
  cdf.(n - 1) <- 1.0;
  { cdf; pmf }

let support t = Array.length t.cdf
let probability t i = t.pmf.(i)

let sample t rng =
  let u = Crypto.Prng.float rng in
  (* First index whose cdf covers u. *)
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) < u then go (mid + 1) hi else go lo mid
    end
  in
  go 0 (Array.length t.cdf - 1)
