type line_op = Keep of string | Del of string | Add of string

let split_lines s = String.split_on_char '\n' s

(* Myers O(ND): forward pass records the furthest-reaching x per
   diagonal k for each edit distance d; the backtrack walks the trace
   from (n, m) to (0, 0) emitting the script in reverse. *)
let diff_lines old_lines new_lines =
  let a = Array.of_list old_lines and b = Array.of_list new_lines in
  let n = Array.length a and m = Array.length b in
  if n = 0 && m = 0 then []
  else begin
    let max_d = n + m in
    let offset = max_d in
    let v = Array.make ((2 * max_d) + 1) 0 in
    let trace = ref [] in
    let final_d = ref (-1) in
    (try
       for d = 0 to max_d do
         let k = ref (-d) in
         while !k <= d do
           let kk = !k in
           let x =
             if kk = -d || (kk <> d && v.(offset + kk - 1) < v.(offset + kk + 1)) then
               v.(offset + kk + 1)
             else v.(offset + kk - 1) + 1
           in
           let x = ref x in
           let y = ref (!x - kk) in
           while !x < n && !y < m && a.(!x) = b.(!y) do
             incr x;
             incr y
           done;
           v.(offset + kk) <- !x;
           if !x >= n && !y >= m then begin
             trace := Array.copy v :: !trace;
             final_d := d;
             raise Exit
           end;
           k := !k + 2
         done;
         trace := Array.copy v :: !trace
       done
     with Exit -> ());
    assert (!final_d >= 0);
    let trace = Array.of_list (List.rev !trace) in
    let script = ref [] in
    let x = ref n and y = ref m in
    for d = !final_d downto 1 do
      let vd = trace.(d - 1) in
      let k = !x - !y in
      let prev_k =
        if k = -d || (k <> d && vd.(offset + k - 1) < vd.(offset + k + 1)) then k + 1
        else k - 1
      in
      let prev_x = vd.(offset + prev_k) in
      let prev_y = prev_x - prev_k in
      (* Snake: matched lines between the edit at depth d-1 and here. *)
      while !x > prev_x && !y > prev_y do
        decr x;
        decr y;
        script := Keep a.(!x) :: !script
      done;
      if prev_k = k + 1 then begin
        (* Down move: insertion of b.(prev_y). *)
        decr y;
        script := Add b.(!y) :: !script
      end
      else begin
        decr x;
        script := Del a.(!x) :: !script
      end
    done;
    while !x > 0 && !y > 0 do
      decr x;
      decr y;
      script := Keep a.(!x) :: !script
    done;
    assert (!x = 0 && !y = 0);
    !script
  end

let diff old_s new_s = diff_lines (split_lines old_s) (split_lines new_s)

let edit_distance old_s new_s =
  List.fold_left
    (fun acc op -> match op with Keep _ -> acc | Del _ | Add _ -> acc + 1)
    0 (diff old_s new_s)
