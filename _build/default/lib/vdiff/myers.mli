(** Line-based diff via Myers' O(ND) algorithm ("An O(ND) difference
    algorithm and its variations", 1986) — the same algorithm family
    CVS/RCS use to store revision deltas.

    The CVS substrate stores each file revision as a delta against its
    parent; this module computes and applies those deltas. *)

type line_op =
  | Keep of string  (** line present in both sides *)
  | Del of string  (** line only in the old version *)
  | Add of string  (** line only in the new version *)

val diff_lines : string list -> string list -> line_op list
(** [diff_lines old new_] is a minimal edit script: the subsequence of
    [Keep]/[Del] is [old], the subsequence of [Keep]/[Add] is [new_],
    and the number of [Del] + [Add] is minimal. *)

val split_lines : string -> string list
(** [String.split_on_char '\n']; the inverse of
    [String.concat "\n"], so text round-trips exactly (including
    presence/absence of a trailing newline). *)

val diff : string -> string -> line_op list
(** Split both strings into lines with {!split_lines} and diff them. *)

val edit_distance : string -> string -> int
(** Number of [Del] + [Add] in the minimal script. *)
