(** Compact, invertible patches derived from {!Myers} scripts.

    The {!Vcs} substrate stores each revision as a patch against its
    parent, exactly as RCS/CVS store ",v" files as delta chains. A
    patch validates the lines it deletes, so applying it to the wrong
    base fails loudly instead of corrupting history. *)

type op =
  | Copy of int  (** copy this many lines from the base, unchecked *)
  | Insert of string list
  | Delete of string list  (** lines removed; validated on apply *)

type t

val ops : t -> op list

val make : old_:string -> new_:string -> t
(** Minimal patch turning [old_] into [new_]. *)

val apply : t -> string -> (string, string) result
(** [apply p base] rebuilds the new text, or [Error reason] when [base]
    is not the text the patch was made against. *)

val inverse : t -> t
(** [apply (inverse p) new_ = Ok old_] whenever [apply p old_ = Ok new_]. *)

val identity : t
(** Patch with no operations; [apply identity s = Ok s] only for the
    empty string— use {!make} for real identities. *)

val is_empty_change : t -> bool
(** True when the patch contains no [Insert]/[Delete]. *)

val additions : t -> int
val deletions : t -> int

val encode : t -> string
val decode : string -> t option

val pp : Format.formatter -> t -> unit
(** Unified-diff-flavoured rendering. *)
