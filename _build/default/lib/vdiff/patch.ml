type op = Copy of int | Insert of string list | Delete of string list

type t = { ops : op list }

let ops t = t.ops

(* Collapse a Myers script into run-length ops. Adjacent ops of the
   same kind merge, which keeps patches small for clustered edits. *)
let of_script script =
  let flush acc kind =
    match kind with
    | `None -> acc
    | `Keep n -> Copy n :: acc
    | `Add ls -> Insert (List.rev ls) :: acc
    | `Del ls -> Delete (List.rev ls) :: acc
  in
  let acc, pending =
    List.fold_left
      (fun (acc, pending) op ->
        match (op, pending) with
        | Myers.Keep _, `Keep n -> (acc, `Keep (n + 1))
        | Myers.Keep _, p -> (flush acc p, `Keep 1)
        | Myers.Add l, `Add ls -> (acc, `Add (l :: ls))
        | Myers.Add l, p -> (flush acc p, `Add [ l ])
        | Myers.Del l, `Del ls -> (acc, `Del (l :: ls))
        | Myers.Del l, p -> (flush acc p, `Del [ l ]))
      ([], `None) script
  in
  { ops = List.rev (flush acc pending) }

let make ~old_ ~new_ = of_script (Myers.diff old_ new_)

let apply t base =
  let lines = ref (Myers.split_lines base) in
  let take n =
    let rec go n acc rest =
      if n = 0 then Some (List.rev acc, rest)
      else match rest with [] -> None | l :: tl -> go (n - 1) (l :: acc) tl
    in
    match go n [] !lines with
    | None -> None
    | Some (taken, rest) ->
        lines := rest;
        Some taken
  in
  let buf = ref [] in
  let rec go = function
    | [] ->
        if !lines <> [] then Error "patch did not consume the whole base"
        else Ok (String.concat "\n" (List.concat (List.rev !buf)))
    | Copy n :: rest -> (
        match take n with
        | None -> Error "base too short for Copy"
        | Some ls ->
            buf := ls :: !buf;
            go rest)
    | Insert ls :: rest ->
        buf := ls :: !buf;
        go rest
    | Delete ls :: rest -> (
        match take (List.length ls) with
        | None -> Error "base too short for Delete"
        | Some actual ->
            if actual <> ls then Error "Delete lines do not match base"
            else go rest)
  in
  go t.ops

let inverse t =
  {
    ops =
      List.map
        (function
          | Copy n -> Copy n
          | Insert ls -> Delete ls
          | Delete ls -> Insert ls)
        t.ops;
  }

let identity = { ops = [] }

let is_empty_change t =
  List.for_all (function Copy _ -> true | Insert _ | Delete _ -> false) t.ops

let additions t =
  List.fold_left
    (fun acc -> function Insert ls -> acc + List.length ls | Copy _ | Delete _ -> acc)
    0 t.ops

let deletions t =
  List.fold_left
    (fun acc -> function Delete ls -> acc + List.length ls | Copy _ | Insert _ -> acc)
    0 t.ops

(* Wire format: each op on its own record, lines separated by \n and
   escaped so line content containing the separator is impossible
   (lines never contain \n by construction). Records framed by a
   leading letter and a count. *)

let encode t =
  let buf = Buffer.create 256 in
  List.iter
    (fun op ->
      match op with
      | Copy n -> Buffer.add_string buf (Printf.sprintf "C%d\n" n)
      | Insert ls ->
          Buffer.add_string buf (Printf.sprintf "I%d\n" (List.length ls));
          List.iter
            (fun l ->
              Buffer.add_string buf l;
              Buffer.add_char buf '\n')
            ls
      | Delete ls ->
          Buffer.add_string buf (Printf.sprintf "D%d\n" (List.length ls));
          List.iter
            (fun l ->
              Buffer.add_string buf l;
              Buffer.add_char buf '\n')
            ls)
    t.ops;
  Buffer.contents buf

let decode s =
  let rec split_n n acc rest =
    if n = 0 then Some (List.rev acc, rest)
    else match rest with [] -> None | l :: tl -> split_n (n - 1) (l :: acc) tl
  in
  let rec go acc = function
    | [] | [ "" ] -> Some { ops = List.rev acc }
    | header :: rest -> (
        if String.length header < 2 then None
        else
          match (header.[0], int_of_string_opt (String.sub header 1 (String.length header - 1))) with
          | _, None -> None
          | _, Some n when n < 0 -> None
          | 'C', Some n -> go (Copy n :: acc) rest
          | 'I', Some n -> (
              match split_n n [] rest with
              | None -> None
              | Some (ls, rest) -> go (Insert ls :: acc) rest)
          | 'D', Some n -> (
              match split_n n [] rest with
              | None -> None
              | Some (ls, rest) -> go (Delete ls :: acc) rest)
          | _ -> None)
  in
  go [] (String.split_on_char '\n' s)

let pp fmt t =
  List.iter
    (fun op ->
      match op with
      | Copy n -> Format.fprintf fmt "@ %d unchanged@." n
      | Insert ls -> List.iter (fun l -> Format.fprintf fmt "+%s@." l) ls
      | Delete ls -> List.iter (fun l -> Format.fprintf fmt "-%s@." l) ls)
    t.ops
