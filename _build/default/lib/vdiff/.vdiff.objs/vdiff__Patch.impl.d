lib/vdiff/patch.ml: Buffer Format List Myers Printf String
