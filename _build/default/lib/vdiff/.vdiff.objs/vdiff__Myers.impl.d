lib/vdiff/myers.ml: Array List String
