lib/vdiff/myers.mli:
