lib/vdiff/patch.mli: Format
