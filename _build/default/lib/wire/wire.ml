exception Underflow

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let u16 t v =
    u8 t (v lsr 8);
    u8 t v

  let u32 t v =
    u16 t (v lsr 16);
    u16 t v

  let u64 t v =
    (* OCaml ints are 63-bit; the top byte carries bits 56+ of the
       (non-negative) value. *)
    for byte = 7 downto 0 do
      u8 t (v lsr (8 * byte))
    done

  let str t s =
    u32 t (String.length s);
    Buffer.add_string t s

  let raw t s = Buffer.add_string t s

  let list t f xs =
    u32 t (List.length xs);
    List.iter f xs

  let contents t = Buffer.contents t
end

module R = struct
  type t = { src : string; mutable pos : int }

  let of_string src = { src; pos = 0 }

  let take t n =
    if t.pos + n > String.length t.src then raise Underflow;
    let start = t.pos in
    t.pos <- t.pos + n;
    start

  let u8 t = Char.code t.src.[take t 1]

  let u16 t =
    let hi = u8 t in
    (hi lsl 8) lor u8 t

  let u32 t =
    let hi = u16 t in
    (hi lsl 16) lor u16 t

  let u64 t =
    let acc = ref 0 in
    for _ = 1 to 8 do
      acc := (!acc lsl 8) lor u8 t
    done;
    !acc

  let raw t n =
    let start = take t n in
    String.sub t.src start n

  let str t =
    let n = u32 t in
    raw t n

  let list t f =
    let n = u32 t in
    List.init n (fun _ -> f t)

  let at_end t = t.pos = String.length t.src
  let expect_end t = if not (at_end t) then raise Underflow
end

let decode s f =
  let r = R.of_string s in
  match
    let v = f r in
    R.expect_end r;
    v
  with
  | v -> Some v
  | exception (Underflow | Invalid_argument _ | Failure _) -> None
