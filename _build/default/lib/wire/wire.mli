(** Minimal binary encoding helpers shared by every wire format in the
    repository (verification objects aside, which predate this module's
    callers and carry their own compact format).

    All integers are big-endian. Strings are length-framed with a
    32-bit header. Decoding is strict: any overrun raises {!Underflow},
    and decoders are expected to convert that to an option/result at
    their API boundary. *)

exception Underflow

module W : sig
  type t
  val create : unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int -> unit
  val str : t -> string -> unit
  (** Length-framed string. *)

  val raw : t -> string -> unit
  (** Unframed bytes (fixed-size fields). *)

  val list : t -> ('a -> unit) -> 'a list -> unit
  (** u32 count followed by each element written by the callback. *)

  val contents : t -> string
end

module R : sig
  type t
  val of_string : string -> t
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int
  val str : t -> string
  val raw : t -> int -> string
  val list : t -> (t -> 'a) -> 'a list
  val at_end : t -> bool
  val expect_end : t -> unit
  (** @raise Underflow if bytes remain. *)
end

val decode : string -> (R.t -> 'a) -> 'a option
(** Run a decoder; [None] on [Underflow] or any [Invalid_argument] /
    [Failure] it raises. Fails (returns [None]) unless the decoder
    consumes the entire input. *)
