(** Hexadecimal encoding of byte strings.

    All protocol messages and digests in this repository are raw byte
    strings; this module provides the canonical lowercase hex
    representation used for logging, test vectors and the CLI. *)

val encode : string -> string
(** [encode s] is the lowercase hexadecimal rendering of [s]; its length
    is [2 * String.length s]. *)

val decode : string -> string
(** [decode h] parses a hex string (upper or lower case) back into raw
    bytes.

    @raise Invalid_argument if [h] has odd length or contains a
    character outside [0-9a-fA-F]. *)

val pp : Format.formatter -> string -> unit
(** [pp fmt s] prints [encode s]. *)
