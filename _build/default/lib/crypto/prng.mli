(** Deterministic pseudo-random generator built on the ChaCha20 block
    function (RFC 8439 core, used here as a CSPRNG, not a cipher).

    Every randomised component in the repository — key generation,
    workload generation, adversary scheduling, property tests that need
    auxiliary entropy — draws from a [Prng.t] seeded from a string, so
    all experiments and simulations are exactly replayable. *)

type t

val create : seed:string -> t
(** [create ~seed] derives a 256-bit key from [seed] with SHA-256 and
    positions the stream at block 0. Equal seeds yield equal streams. *)

val split : t -> label:string -> t
(** [split g ~label] derives an independent generator keyed by the
    parent seed and [label], without disturbing the parent's stream.
    Used to hand each agent / component its own replayable stream. *)

val bytes : t -> int -> string
(** [bytes g n] returns the next [n] bytes of the stream. *)

val byte : t -> int
(** Next byte, as 0..255. *)

val int : t -> int -> int
(** [int g bound] is uniform in [0, bound). Uses rejection sampling, so
    it is exactly uniform.
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [lo, hi] inclusive. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [0, 1), with 53 bits of precision. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli g ~p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean; used for
    think-time and offline-period generation in workloads. *)
