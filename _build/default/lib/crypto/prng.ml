(* ChaCha20 block function (RFC 8439) driving a byte stream. State words
   are 32-bit values stored in native ints and masked, as in Sha256. *)

let mask = 0xffffffff

type t = {
  key : string; (* 32 bytes *)
  mutable counter : int; (* block counter *)
  block : Bytes.t; (* 64-byte keystream block *)
  mutable pos : int; (* consumed bytes within [block] *)
}

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

let quarter_round st a b c d =
  st.(a) <- (st.(a) + st.(b)) land mask;
  st.(d) <- rotl (st.(d) lxor st.(a)) 16;
  st.(c) <- (st.(c) + st.(d)) land mask;
  st.(b) <- rotl (st.(b) lxor st.(c)) 12;
  st.(a) <- (st.(a) + st.(b)) land mask;
  st.(d) <- rotl (st.(d) lxor st.(a)) 8;
  st.(c) <- (st.(c) + st.(d)) land mask;
  st.(b) <- rotl (st.(b) lxor st.(c)) 7

let word_of_le s i =
  Char.code s.[i]
  lor (Char.code s.[i + 1] lsl 8)
  lor (Char.code s.[i + 2] lsl 16)
  lor (Char.code s.[i + 3] lsl 24)

(* "expand 32-byte k" *)
let sigma = [| 0x61707865; 0x3320646e; 0x79622d32; 0x6b206574 |]

let fill_block g =
  let init = Array.make 16 0 in
  Array.blit sigma 0 init 0 4;
  for i = 0 to 7 do
    init.(4 + i) <- word_of_le g.key (4 * i)
  done;
  (* 64-bit counter split across words 12-13; nonce words left zero
     (each generator instance has a distinct key, so nonce reuse across
     instances is impossible). *)
  init.(12) <- g.counter land mask;
  init.(13) <- (g.counter lsr 32) land mask;
  let st = Array.copy init in
  for _round = 1 to 10 do
    quarter_round st 0 4 8 12;
    quarter_round st 1 5 9 13;
    quarter_round st 2 6 10 14;
    quarter_round st 3 7 11 15;
    quarter_round st 0 5 10 15;
    quarter_round st 1 6 11 12;
    quarter_round st 2 7 8 13;
    quarter_round st 3 4 9 14
  done;
  for i = 0 to 15 do
    let v = (st.(i) + init.(i)) land mask in
    Bytes.set g.block (4 * i) (Char.chr (v land 0xff));
    Bytes.set g.block ((4 * i) + 1) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set g.block ((4 * i) + 2) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set g.block ((4 * i) + 3) (Char.chr ((v lsr 24) land 0xff))
  done;
  g.counter <- g.counter + 1;
  g.pos <- 0

let create ~seed =
  let g =
    { key = Sha256.digest seed; counter = 0; block = Bytes.create 64; pos = 64 }
  in
  g

let split g ~label =
  create ~seed:(Hmac.mac ~key:g.key ("prng-split:" ^ label))

let byte g =
  if g.pos >= 64 then fill_block g;
  let b = Char.code (Bytes.get g.block g.pos) in
  g.pos <- g.pos + 1;
  b

let bytes g n =
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set out i (Char.chr (byte g))
  done;
  Bytes.unsafe_to_string out

(* 62 uniform bits (keeps the value a non-negative OCaml int). *)
let bits62 g =
  let acc = ref 0 in
  for _ = 1 to 8 do
    acc := (!acc lsl 8) lor byte g
  done;
  !acc land max_int

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top of the 62-bit range for exact
     uniformity. *)
  let limit = max_int - (max_int mod bound) in
  let rec draw () =
    let v = bits62 g in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let bool g = byte g land 1 = 1
let float g = Stdlib.float_of_int (bits62 g lsr 9) *. 0x1p-53

let bernoulli g ~p =
  if p <= 0. then false else if p >= 1. then true else float g < p

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick g arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int g (Array.length arr))

let exponential g ~mean =
  if mean <= 0. then invalid_arg "Prng.exponential: mean must be positive";
  let u = 1.0 -. float g in
  -.mean *. log u
