lib/crypto/hex.ml: Bytes Char Format Printf String
