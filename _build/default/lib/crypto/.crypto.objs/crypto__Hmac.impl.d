lib/crypto/hmac.ml: Bytes Char Ctime List Sha256 String
