lib/crypto/prng.ml: Array Bytes Char Hmac Sha256 Stdlib String
