lib/crypto/hmac.mli:
