lib/crypto/hex.mli: Format
