lib/crypto/ctime.mli:
