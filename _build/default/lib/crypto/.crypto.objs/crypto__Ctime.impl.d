lib/crypto/ctime.ml: Char String
