lib/crypto/prng.mli:
