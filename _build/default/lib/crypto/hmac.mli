(** HMAC-SHA256 (RFC 2104).

    Used for the shared-key "signature" variant of the protocols (a
    deployment where all users share one secret, trading
    non-repudiation for speed) and as the PRF inside the deterministic
    PRNG key schedule. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under
    [key]. Keys longer than the 64-byte block size are hashed first,
    per RFC 2104. *)

val mac_list : key:string -> string list -> string
(** [mac_list ~key parts] authenticates the concatenation of [parts]. *)

val verify : key:string -> string -> tag:string -> bool
(** [verify ~key msg ~tag] recomputes the tag and compares it in
    constant time. *)
