let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let padded = Bytes.make block_size '\x00' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  Bytes.unsafe_to_string padded

let xor_with pad byte =
  String.map (fun c -> Char.chr (Char.code c lxor byte)) pad

let mac_list ~key parts =
  let key = normalize_key key in
  let inner = Sha256.init () in
  Sha256.feed inner (xor_with key 0x36);
  List.iter (Sha256.feed inner) parts;
  let inner_digest = Sha256.finalize inner in
  Sha256.digest_list [ xor_with key 0x5c; inner_digest ]

let mac ~key msg = mac_list ~key [ msg ]
let verify ~key msg ~tag = Ctime.equal (mac ~key msg) tag
