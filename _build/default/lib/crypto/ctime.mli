(** Constant-time byte-string comparison.

    Tag and signature checks must not leak the position of the first
    mismatching byte through timing. *)

val equal : string -> string -> bool
(** [equal a b] is [true] iff [a] and [b] are byte-wise equal. Runs in
    time depending only on the lengths. Strings of different lengths
    compare unequal immediately (length is public). *)
