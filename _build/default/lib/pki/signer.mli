(** Unified signature interface over the schemes built in this
    repository.

    Protocol I needs "unforgeable signatures with authentically known
    verification keys" and nothing more, so protocols are written
    against this interface and the concrete scheme is an experiment
    parameter:

    - {b RSA} — the paper's PKI assumption (RFC 2459 [4]);
    - {b MSS} — hash-based many-time signatures (Merkle [9]), no
      number theory;
    - {b HMAC-shared} — one shared secret across users; cheapest, but a
      compromised user can frame the server (kept for the `sig-schemes`
      cost comparison and deployments where users are one principal). *)

type scheme =
  | Rsa of { bits : int }
  | Mss of { height : int; w : int }
  | Hmac_shared of { key : string }

type t
(** Private signing capability of one user. *)

type verifier
(** Public verification data for one user. *)

val scheme_name : scheme -> string

val generate : scheme -> Crypto.Prng.t -> t * verifier
(** Fresh keypair (or shared-key wrapper) for one user. *)

val sign : t -> string -> string
(** @raise Hashsig.Mss.Keys_exhausted if an MSS signer runs out of
    one-time leaves. *)

val verify : verifier -> string -> signature:string -> bool
val signature_size : scheme -> int
(** Size in bytes of signatures under [scheme] (constant per scheme). *)

val verifier_fingerprint : verifier -> string
(** 32-byte digest identifying the verification key; what a CA would
    certify. *)
