(** Authentic public-key directory — the simulated certificate
    authority.

    The paper assumes "the existence of a public key infrastructure,
    for example as in [RFC 2459]". A keyring is the end product of such
    a PKI from the protocols' point of view: an authentic, shared map
    from user identity to verification key that the untrusted server
    cannot influence. Users are identified by small integer ids, as in
    the paper's "user i", "user j". *)

type user_id = int

type t

val create : unit -> t

val register : t -> user_id -> Signer.verifier -> unit
(** @raise Invalid_argument if the user is already registered (keys are
    immutable once certified, matching a CA issuing one cert per
    user). *)

val find : t -> user_id -> Signer.verifier option
val mem : t -> user_id -> bool
val user_count : t -> int
val users : t -> user_id list
(** Registered ids in increasing order. *)

val verify : t -> user_id -> string -> signature:string -> bool
(** [verify ring i msg ~signature] is [false] when [i] is unknown —
    an unknown signer is never legitimate. *)

val setup : scheme:Signer.scheme -> users:int -> Crypto.Prng.t -> t * Signer.t array
(** [setup ~scheme ~users rng] performs the trusted-setup ceremony:
    generates a keypair per user (ids [0 .. users-1]), registers all
    verifiers, and returns the keyring together with each user's
    private signer. *)
