lib/pki/keyring.ml: Array Crypto Hashtbl List Printf Signer Stdlib
