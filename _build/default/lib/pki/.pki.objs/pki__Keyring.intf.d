lib/pki/keyring.mli: Crypto Signer
