lib/pki/signer.ml: Crypto Hashsig Printf Rsa
