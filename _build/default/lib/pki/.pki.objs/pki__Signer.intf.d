lib/pki/signer.mli: Crypto
