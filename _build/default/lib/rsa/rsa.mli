(** RSA signatures with SHA-256, in the style of RSASSA-PKCS1-v1_5.

    This realises the paper's PKI assumption (Section 4.2 cites RFC
    2459 [4]): users sign root digests with private keys whose public
    halves are distributed authentically by {!Pki.Keyring}. Key sizes
    here are a benchmark parameter, not a security recommendation —
    512-bit keys keep simulator experiments fast while exercising the
    same code path as 2048-bit keys. *)

type public_key = { n : Bignum.Nat.t; e : Bignum.Nat.t }
type private_key = {
  pub : public_key;
  d : Bignum.Nat.t;
  p : Bignum.Nat.t;
  q : Bignum.Nat.t;
}

type keypair = { public : public_key; private_ : private_key }

val generate : Crypto.Prng.t -> bits:int -> keypair
(** [generate rng ~bits] creates a keypair with a [bits]-bit modulus
    (e = 65537). [bits] must be at least 128 and even. *)

val key_bytes : public_key -> int
(** Width of the modulus in bytes; also the signature length. *)

val sign : private_key -> string -> string
(** [sign key msg] is the PKCS#1 v1.5-style SHA-256 signature of [msg],
    of length [key_bytes key.pub]. *)

val verify : public_key -> string -> signature:string -> bool
(** Constant-time comparison of the recovered encoding against the
    expected one. Returns [false] on any malformed input. *)

val public_to_string : public_key -> string
(** Canonical serialisation (for keyring storage and hashing). *)

val public_of_string : string -> public_key option
