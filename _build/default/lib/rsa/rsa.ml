module Nat = Bignum.Nat
module Prime = Bignum.Prime

type public_key = { n : Nat.t; e : Nat.t }

type private_key = {
  pub : public_key;
  d : Nat.t;
  p : Nat.t;
  q : Nat.t;
}

type keypair = { public : public_key; private_ : private_key }

let e_65537 = Nat.of_int 65537

let generate rng ~bits =
  if bits < 128 || bits mod 2 <> 0 then
    invalid_arg "Rsa.generate: bits must be even and >= 128";
  let half = bits / 2 in
  let rec attempt () =
    let p = Prime.generate rng ~bits:half in
    let q = Prime.generate rng ~bits:half in
    if Nat.equal p q then attempt ()
    else begin
      let n = Nat.mul p q in
      let phi = Nat.mul (Nat.pred p) (Nat.pred q) in
      match Nat.mod_inverse e_65537 ~modulus:phi with
      | None -> attempt ()
      | Some d ->
          let pub = { n; e = e_65537 } in
          { public = pub; private_ = { pub; d; p; q } }
    end
  in
  attempt ()

let key_bytes pub = (Nat.bit_length pub.n + 7) / 8

(* DER DigestInfo prefix for SHA-256 (RFC 8017 section 9.2 note 1). *)
let sha256_digest_info_prefix =
  Crypto.Hex.decode "3031300d060960864801650304020105000420"

(* EMSA-PKCS1-v1_5: 0x00 0x01 FF..FF 0x00 DigestInfo. *)
let emsa_encode ~em_len msg =
  let digest = Crypto.Sha256.digest msg in
  let t = sha256_digest_info_prefix ^ digest in
  let t_len = String.length t in
  if em_len < t_len + 11 then invalid_arg "Rsa: modulus too short for EMSA encoding";
  let ps = String.make (em_len - t_len - 3) '\xff' in
  "\x00\x01" ^ ps ^ "\x00" ^ t

let sign key msg =
  let em_len = key_bytes key.pub in
  let em = Nat.of_bytes_be (emsa_encode ~em_len msg) in
  let s = Nat.mod_pow ~base:em ~exp:key.d ~modulus:key.pub.n in
  Nat.to_bytes_be ~pad_to:em_len s

let verify pub msg ~signature =
  let em_len = key_bytes pub in
  if String.length signature <> em_len then false
  else begin
    let s = Nat.of_bytes_be signature in
    if Nat.compare s pub.n >= 0 then false
    else begin
      let em = Nat.mod_pow ~base:s ~exp:pub.e ~modulus:pub.n in
      match Nat.to_bytes_be ~pad_to:em_len em with
      | recovered -> Crypto.Ctime.equal recovered (emsa_encode ~em_len msg)
      | exception Invalid_argument _ -> false
    end
  end

(* Serialisation: 4-byte big-endian length framing for each component. *)
let frame s =
  let n = String.length s in
  let hdr = Bytes.create 4 in
  for i = 0 to 3 do
    Bytes.set hdr i (Char.chr ((n lsr (8 * (3 - i))) land 0xff))
  done;
  Bytes.unsafe_to_string hdr ^ s

let unframe s pos =
  if pos + 4 > String.length s then None
  else begin
    let n =
      (Char.code s.[pos] lsl 24)
      lor (Char.code s.[pos + 1] lsl 16)
      lor (Char.code s.[pos + 2] lsl 8)
      lor Char.code s.[pos + 3]
    in
    if pos + 4 + n > String.length s then None
    else Some (String.sub s (pos + 4) n, pos + 4 + n)
  end

let public_to_string pub =
  frame (Nat.to_bytes_be pub.n) ^ frame (Nat.to_bytes_be pub.e)

let public_of_string s =
  match unframe s 0 with
  | None -> None
  | Some (n_bytes, pos) -> (
      match unframe s pos with
      | Some (e_bytes, pos') when pos' = String.length s ->
          Some { n = Nat.of_bytes_be n_bytes; e = Nat.of_bytes_be e_bytes }
      | _ -> None)
