exception Keys_exhausted

let value_size = 32

type signer = {
  params : Winternitz.params;
  height : int;
  secrets : Winternitz.secret_key array;
  publics : Winternitz.public_key array;
  (* levels.(0) = leaf digests, levels.(height) = [| root |]. *)
  levels : string array array;
  mutable next_leaf : int;
}

type public_key = string

let node_hash left right = Crypto.Sha256.digest_list [ "mss-node"; left; right ]
let leaf_hash wots_pk_digest = Crypto.Sha256.digest_list [ "mss-leaf"; wots_pk_digest ]

let create ~height ~w rng =
  if height < 1 || height > 20 then invalid_arg "Mss.create: height must be in [1, 20]";
  let params = Winternitz.params ~w in
  let n = 1 lsl height in
  let keypairs = Array.init n (fun _ -> Winternitz.generate params rng) in
  let secrets = Array.map fst keypairs and publics = Array.map snd keypairs in
  let levels = Array.make (height + 1) [||] in
  levels.(0) <- Array.map (fun pk -> leaf_hash (Winternitz.public_key_digest pk)) publics;
  for level = 1 to height do
    let below = levels.(level - 1) in
    levels.(level) <-
      Array.init
        (Array.length below / 2)
        (fun i -> node_hash below.(2 * i) below.((2 * i) + 1))
  done;
  { params; height; secrets; publics; levels; next_leaf = 0 }

let public_key t = t.levels.(t.height).(0)
let capacity t = 1 lsl t.height
let signatures_remaining t = capacity t - t.next_leaf

let auth_path t leaf =
  List.init t.height (fun level ->
      let index_at_level = leaf lsr level in
      t.levels.(level).(index_at_level lxor 1))

(* Wire format:
   2 bytes height | 2 bytes w | 4 bytes leaf index |
   WOTS public key | WOTS signature | height * 32 bytes auth path.
   All integers big-endian. *)

let put_u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let put_u32 buf v =
  put_u16 buf ((v lsr 16) land 0xffff);
  put_u16 buf (v land 0xffff)

let get_u16 s pos = (Char.code s.[pos] lsl 8) lor Char.code s.[pos + 1]
let get_u32 s pos = (get_u16 s pos lsl 16) lor get_u16 s (pos + 2)

let w_of_params p = Winternitz.chain_count p

let signature_size ~height ~w =
  let p = Winternitz.params ~w in
  8 + (Winternitz.chain_count p * value_size) + Winternitz.signature_size p
  + (height * value_size)

let sign t msg =
  if t.next_leaf >= capacity t then raise Keys_exhausted;
  let leaf = t.next_leaf in
  t.next_leaf <- leaf + 1;
  let wots_sig = Winternitz.sign t.secrets.(leaf) msg in
  let buf = Buffer.create 256 in
  put_u16 buf t.height;
  put_u16 buf (w_of_params t.params);
  put_u32 buf leaf;
  Buffer.add_string buf (Winternitz.public_to_string t.publics.(leaf));
  Buffer.add_string buf wots_sig;
  List.iter (Buffer.add_string buf) (auth_path t leaf);
  Buffer.contents buf

let verify root msg ~signature =
  let len = String.length signature in
  if len < 8 then false
  else begin
    let height = get_u16 signature 0 in
    let encoded_chains = get_u16 signature 2 in
    let leaf = get_u32 signature 4 in
    (* Recover the Winternitz parameter set by matching chain counts
       over the legal powers of two. *)
    let params =
      List.find_opt
        (fun w -> Winternitz.chain_count (Winternitz.params ~w) = encoded_chains)
        [ 4; 8; 16; 32; 64; 128; 256 ]
      |> Option.map (fun w -> Winternitz.params ~w)
    in
    match params with
    | None -> false
    | Some p ->
        let pk_len = Winternitz.chain_count p * value_size in
        let sig_len = Winternitz.signature_size p in
        let expected = 8 + pk_len + sig_len + (height * value_size) in
        if len <> expected || height < 1 || height > 20 || leaf >= 1 lsl height then
          false
        else begin
          let wots_pk_str = String.sub signature 8 pk_len in
          let wots_sig = String.sub signature (8 + pk_len) sig_len in
          match Winternitz.public_of_string p wots_pk_str with
          | None -> false
          | Some wots_pk ->
              Winternitz.verify wots_pk msg ~signature:wots_sig
              && begin
                   let node =
                     ref (leaf_hash (Winternitz.public_key_digest wots_pk))
                   in
                   for level = 0 to height - 1 do
                     let sibling =
                       String.sub signature
                         (8 + pk_len + sig_len + (level * value_size))
                         value_size
                     in
                     node :=
                       if (leaf lsr level) land 1 = 0 then node_hash !node sibling
                       else node_hash sibling !node
                   done;
                   Crypto.Ctime.equal !node root
                 end
        end
  end
