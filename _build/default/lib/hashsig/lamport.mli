(** Lamport one-time signatures (Lamport 1979, cited via Merkle [9]).

    A keypair signs exactly one message: the secret key is 256 pairs of
    random 32-byte preimages, the public key their hashes. Signing a
    message reveals one preimage per digest bit. Reusing a key leaks
    both preimages of differing bits, so {!Mss} layers a Merkle tree of
    one-time keys to obtain a many-time scheme. *)

type secret_key
type public_key

val generate : Crypto.Prng.t -> secret_key * public_key
val sign : secret_key -> string -> string
(** [sign sk msg] signs SHA-256(msg); the signature is 256 × 32 bytes. *)

val verify : public_key -> string -> signature:string -> bool

val public_key_digest : public_key -> string
(** 32-byte commitment to the public key (hash of all 512 hashes);
    used as the Merkle-tree leaf in {!Mss}. *)

val public_key_size : int
(** Size of a serialised public key in bytes. *)

val signature_size : int

val public_to_string : public_key -> string
val public_of_string : string -> public_key option
