let value_size = 32
let hash_bits = 256

type params = { w : int; log_w : int; l1 : int; l2 : int }

let is_power_of_two v = v > 0 && v land (v - 1) = 0

let params ~w =
  if not (is_power_of_two w) || w < 4 || w > 256 then
    invalid_arg "Winternitz.params: w must be a power of two in [4, 256]";
  let log_w =
    let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
    go 0 w
  in
  let l1 = (hash_bits + log_w - 1) / log_w in
  let max_checksum = l1 * (w - 1) in
  let l2 =
    let rec digits acc v = if v = 0 then max acc 1 else digits (acc + 1) (v / w) in
    digits 0 max_checksum
  in
  { w; log_w; l1; l2 }

let chain_count p = p.l1 + p.l2

type secret_key = { p : params; sk : string array }
type public_key = { pp : params; pk : string array }

let signature_size p = chain_count p * value_size

(* Apply the chain function [count] times. Each step domain-separates on
   the chain position to defeat multi-target birthday attacks. *)
let chain start count v =
  let cur = ref v in
  for step = start to start + count - 1 do
    cur := Crypto.Sha256.digest_list [ "wots-chain"; String.make 1 (Char.chr step); !cur ]
  done;
  !cur

let generate p rng =
  let l = chain_count p in
  let sk = Array.init l (fun _ -> Crypto.Prng.bytes rng value_size) in
  let pk = Array.map (chain 0 (p.w - 1)) sk in
  ({ p; sk }, { pp = p; pk })

(* Base-w digits of the message digest, MSB-first, followed by the
   base-w digits of the checksum. *)
let digits_of_message p msg =
  let digest = Crypto.Sha256.digest msg in
  let bit i = (Char.code digest.[i / 8] lsr (7 - (i mod 8))) land 1 in
  let message_digits =
    Array.init p.l1 (fun chunk ->
        let acc = ref 0 in
        for b = 0 to p.log_w - 1 do
          let idx = (chunk * p.log_w) + b in
          let v = if idx < hash_bits then bit idx else 0 in
          acc := (!acc lsl 1) lor v
        done;
        !acc)
  in
  let checksum = Array.fold_left (fun acc d -> acc + (p.w - 1 - d)) 0 message_digits in
  let checksum_digits =
    let ds = Array.make p.l2 0 in
    let v = ref checksum in
    for i = p.l2 - 1 downto 0 do
      ds.(i) <- !v mod p.w;
      v := !v / p.w
    done;
    ds
  in
  Array.append message_digits checksum_digits

let sign key msg =
  let digits = digits_of_message key.p msg in
  let buf = Buffer.create (signature_size key.p) in
  Array.iteri (fun i d -> Buffer.add_string buf (chain 0 d key.sk.(i))) digits;
  Buffer.contents buf

let verify pub msg ~signature =
  let p = pub.pp in
  String.length signature = signature_size p
  && begin
       let digits = digits_of_message p msg in
       let ok = ref true in
       Array.iteri
         (fun i d ->
           let part = String.sub signature (i * value_size) value_size in
           let tip = chain d (p.w - 1 - d) part in
           if not (Crypto.Ctime.equal tip pub.pk.(i)) then ok := false)
         digits;
       !ok
     end

let public_to_string pub = String.concat "" (Array.to_list pub.pk)

let public_of_string p s =
  let l = chain_count p in
  if String.length s <> l * value_size then None
  else Some { pp = p; pk = Array.init l (fun i -> String.sub s (i * value_size) value_size) }

let public_key_digest pub = Crypto.Sha256.digest (public_to_string pub)
