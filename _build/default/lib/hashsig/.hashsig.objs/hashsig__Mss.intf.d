lib/hashsig/mss.mli: Crypto
