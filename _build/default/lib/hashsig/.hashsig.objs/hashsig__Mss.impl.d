lib/hashsig/mss.ml: Array Buffer Char Crypto List Option String Winternitz
