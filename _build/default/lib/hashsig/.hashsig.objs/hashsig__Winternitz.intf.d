lib/hashsig/winternitz.mli: Crypto
