lib/hashsig/lamport.ml: Array Buffer Char Crypto String
