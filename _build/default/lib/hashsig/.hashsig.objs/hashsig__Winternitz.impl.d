lib/hashsig/winternitz.ml: Array Buffer Char Crypto String
