lib/hashsig/lamport.mli: Crypto
