let hash_bits = 256
let value_size = 32

type secret_key = { sk0 : string array; sk1 : string array }
type public_key = { pk0 : string array; pk1 : string array }

let public_key_size = 2 * hash_bits * value_size
let signature_size = hash_bits * value_size

let generate rng =
  let fresh () = Array.init hash_bits (fun _ -> Crypto.Prng.bytes rng value_size) in
  let sk0 = fresh () and sk1 = fresh () in
  let pk0 = Array.map Crypto.Sha256.digest sk0 in
  let pk1 = Array.map Crypto.Sha256.digest sk1 in
  ({ sk0; sk1 }, { pk0; pk1 })

let bit_of_digest digest i = (Char.code digest.[i / 8] lsr (7 - (i mod 8))) land 1

let sign sk msg =
  let digest = Crypto.Sha256.digest msg in
  let buf = Buffer.create signature_size in
  for i = 0 to hash_bits - 1 do
    let preimage = if bit_of_digest digest i = 0 then sk.sk0.(i) else sk.sk1.(i) in
    Buffer.add_string buf preimage
  done;
  Buffer.contents buf

let verify pk msg ~signature =
  String.length signature = signature_size
  && begin
       let digest = Crypto.Sha256.digest msg in
       let ok = ref true in
       for i = 0 to hash_bits - 1 do
         let revealed = String.sub signature (i * value_size) value_size in
         let expected = if bit_of_digest digest i = 0 then pk.pk0.(i) else pk.pk1.(i) in
         if not (Crypto.Ctime.equal (Crypto.Sha256.digest revealed) expected) then
           ok := false
       done;
       !ok
     end

let public_to_string pk =
  String.concat "" (Array.to_list pk.pk0) ^ String.concat "" (Array.to_list pk.pk1)

let public_of_string s =
  if String.length s <> public_key_size then None
  else begin
    let read offset i = String.sub s (offset + (i * value_size)) value_size in
    let pk0 = Array.init hash_bits (read 0) in
    let pk1 = Array.init hash_bits (read (hash_bits * value_size)) in
    Some { pk0; pk1 }
  end

let public_key_digest pk = Crypto.Sha256.digest (public_to_string pk)
