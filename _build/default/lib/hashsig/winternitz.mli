(** Winternitz one-time signatures (WOTS).

    Generalises Lamport by signing [log2 w] bits per hash chain, trading
    signature size for chain-walk time. With the checksum chains the
    scheme is existentially unforgeable under one-time use. The [w]
    parameter (chain length, a power of two between 4 and 256) is swept
    by the `sig-schemes` experiment. *)

type params
type secret_key
type public_key

val params : w:int -> params
(** @raise Invalid_argument unless [w] is a power of two in [4, 256]. *)

val chain_count : params -> int
(** Number of hash chains (message + checksum chunks). *)

val generate : params -> Crypto.Prng.t -> secret_key * public_key
val sign : secret_key -> string -> string
val verify : public_key -> string -> signature:string -> bool

val public_key_digest : public_key -> string
val signature_size : params -> int
val public_to_string : public_key -> string
val public_of_string : params -> string -> public_key option
