(** Merkle Signature Scheme (Merkle, "A certified digital signature",
    CRYPTO 1989 — the paper's reference [9]).

    A binary hash tree over 2^height Winternitz one-time public keys
    turns one-time signatures into a many-time scheme whose public key
    is a single 32-byte root. The signer is stateful: each signature
    consumes one leaf, and exhausting the tree raises
    {!Keys_exhausted}. This gives the repository a signature scheme
    built from nothing but the hash function — matching the spirit of
    the paper, whose entire verification machinery is hash-based. *)

exception Keys_exhausted

type signer
type public_key = string
(** The 32-byte Merkle root. *)

val create : height:int -> w:int -> Crypto.Prng.t -> signer
(** [create ~height ~w rng] builds a signer able to produce 2^height
    signatures with Winternitz parameter [w].
    @raise Invalid_argument if [height] is not in [1, 20]. *)

val public_key : signer -> public_key
val signatures_remaining : signer -> int
val capacity : signer -> int

val sign : signer -> string -> string
(** Consumes the next unused leaf. The returned signature encodes the
    leaf index, the WOTS signature, the WOTS public key and the
    authentication path. @raise Keys_exhausted once all leaves are
    spent. *)

val verify : public_key -> string -> signature:string -> bool

val signature_size : height:int -> w:int -> int
(** Size in bytes of every signature produced by such a signer. *)
