(** Internal node representation and algorithms of the Merkle B⁺-tree.

    This module is the engine shared by {!Merkle_btree} (the server's
    full tree) and {!Vo} (the client's pruned verification objects): a
    pruned tree is an ordinary tree in which unexplored subtrees are
    [Stub]s carrying only their digest. Every algorithm below works on
    both; descending into a [Stub] raises {!Insufficient_proof}, which
    on the client side means the server supplied a malformed
    verification object.

    Digests: a leaf's digest commits to its sorted (key, hash-of-value)
    sequence; an internal node's digest commits to its separator keys
    and child digests (all length-framed, so the encoding is
    injective). This is exactly the construction of Figure 2 of the
    paper, generalised from the figure's single path to the whole
    tree. *)

exception Insufficient_proof

type entry = { key : string; value : string }

type t =
  | Leaf of { entries : entry array; digest : string }
  | Node of { keys : string array; children : t array; digest : string }
  | Stub of string
      (** An off-path subtree represented only by its digest. *)

val digest : t -> string
val empty_leaf : t

val make_leaf : entry array -> t
(** Smart constructor: computes and caches the digest. Entries must be
    sorted by key (checked by assertion). *)

val make_node : string array -> t array -> t
(** Smart constructor for internal nodes; [keys] has one fewer element
    than [children]. *)

val child_index : string array -> string -> int
(** Routing: index of the child of a node with separator [keys] that
    covers [key]. *)

(** Result of an insert/update at some subtree: either the subtree was
    rebuilt in place, or it overflowed and split into two with a
    separator key. *)
type insert_result = Ok_one of t | Split of t * string * t

val find : t -> string -> string option
(** @raise Insufficient_proof if the search path crosses a [Stub]. *)

val insert : branching:int -> t -> key:string -> value:string -> insert_result
(** Insert or overwrite. *)

val delete : branching:int -> t -> key:string -> t option
(** [delete ~branching t ~key] is [None] if [key] is absent, [Some t']
    otherwise. The returned root may be underfull or have a single
    child; {!collapse_root} normalises it. *)

val collapse_root : t -> t
(** Replace a one-child internal root by its child (repeatedly). *)

val range : t -> lo:string -> hi:string -> entry list
(** Entries with [lo <= key <= hi], in key order. *)

val entry_count : t -> int
(** @raise Insufficient_proof on a tree containing stubs. *)

val to_alist : t -> (string * string) list
(** All entries in key order. @raise Insufficient_proof on stubs. *)

val min_leaf_entries : branching:int -> int
val max_leaf_entries : branching:int -> int
val min_children : branching:int -> int
val max_children : branching:int -> int

val check_invariants : branching:int -> t -> (unit, string) result
(** Structural validation (for tests): sortedness, separator bounds,
    occupancy bounds (root exempt), uniform leaf depth, digest
    integrity at every node. Stubs are accepted as opaque. *)

val depth : t -> int
(** Length of the leftmost root-to-leaf path (stub counts as depth 0
    below itself). *)

val pp : Format.formatter -> t -> unit
(** Debugging rendering of the structure with abbreviated digests. *)
