type t = { root : Node.t; branching : int; count : int }

let create ?(branching = 16) () =
  if branching < 4 then invalid_arg "Merkle_btree.create: branching must be >= 4";
  { root = Node.empty_leaf; branching; count = 0 }

let branching t = t.branching
let root_digest t = Node.digest t.root
let size t = t.count
let root t = t.root
let find t key = Node.find t.root key
let mem t key = Option.is_some (find t key)

let set t ~key ~value =
  let existed = mem t key in
  let root =
    match Node.insert ~branching:t.branching t.root ~key ~value with
    | Node.Ok_one n -> n
    | Node.Split (l, sep, r) -> Node.make_node [| sep |] [| l; r |]
  in
  { t with root; count = (if existed then t.count else t.count + 1) }

let remove t key =
  match Node.delete ~branching:t.branching t.root ~key with
  | None -> t
  | Some root -> { t with root = Node.collapse_root root; count = t.count - 1 }

let range t ~lo ~hi =
  Node.range t.root ~lo ~hi |> List.map (fun (e : Node.entry) -> (e.key, e.value))

let to_alist t = Node.to_alist t.root
let keys t = List.map fst (to_alist t)

let of_alist ?branching entries =
  List.fold_left (fun t (key, value) -> set t ~key ~value) (create ?branching ()) entries

let check_invariants t =
  match Node.check_invariants ~branching:t.branching t.root with
  | Error _ as e -> e
  | Ok () ->
      let n = Node.entry_count t.root in
      if n <> t.count then Error (Printf.sprintf "count mismatch: %d vs %d" t.count n)
      else Ok ()

let depth t = Node.depth t.root
