lib/mtree/vo.ml: Array Buffer Char Format Fun List Merkle_btree Node String
