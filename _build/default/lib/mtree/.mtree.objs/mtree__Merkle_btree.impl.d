lib/mtree/merkle_btree.ml: List Node Option Printf
