lib/mtree/vo.mli: Format Merkle_btree Node
