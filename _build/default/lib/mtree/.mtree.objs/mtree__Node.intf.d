lib/mtree/node.mli: Format
