lib/mtree/merkle_btree.mli: Node
