lib/mtree/node.ml: Array Buffer Char Crypto Format List Printf Stdlib String
