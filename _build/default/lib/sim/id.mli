(** Agent identities of the Section 2 system model: one server and [n]
    users. (The environment agent — global clock, message queues — is
    the {!Engine} itself.) *)

type t = Server | User of int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
