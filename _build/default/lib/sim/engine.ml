type 'msg handlers = {
  on_message : round:int -> src:Id.t -> 'msg -> unit;
  on_activate : round:int -> unit;
}

type 'msg envelope = { src : Id.t; dst : Id.t; payload : 'msg }
type alarm_record = { agent : Id.t; at_round : int; reason : string }

type 'msg t = {
  mutable agents : (Id.t * 'msg handlers) list; (* registration order *)
  mutable pending : 'msg envelope list; (* sent this round, reversed *)
  mutable round : int;
  mutable messages_sent : int;
  mutable broadcasts_sent : int;
  mutable bytes_sent : int;
  measure : 'msg -> int;
  mutable alarms : alarm_record list; (* newest first *)
}

let create ?(measure = fun _ -> 0) () =
  {
    agents = [];
    pending = [];
    round = 0;
    messages_sent = 0;
    broadcasts_sent = 0;
    bytes_sent = 0;
    measure;
    alarms = [];
  }

let register t id handlers =
  if List.mem_assoc id t.agents then
    invalid_arg (Printf.sprintf "Engine.register: %s already registered" (Id.to_string id));
  t.agents <- t.agents @ [ (id, handlers) ]

let send t ~src ~dst msg =
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + t.measure msg;
  t.pending <- { src; dst; payload = msg } :: t.pending

let broadcast t ~src msg =
  List.iter
    (fun (id, _) ->
      match id with
      | Id.User _ when not (Id.equal id src) ->
          t.broadcasts_sent <- t.broadcasts_sent + 1;
          t.bytes_sent <- t.bytes_sent + t.measure msg;
          t.pending <- { src; dst = id; payload = msg } :: t.pending
      | Id.User _ | Id.Server -> ())
    t.agents

let round t = t.round

let step t =
  let due = List.rev t.pending in
  t.pending <- [];
  t.round <- t.round + 1;
  let round = t.round in
  List.iter
    (fun { src; dst; payload } ->
      match List.assoc_opt dst t.agents with
      | None -> ()
      | Some h -> h.on_message ~round ~src payload)
    due;
  List.iter (fun (_, h) -> h.on_activate ~round) t.agents

let run t ~rounds =
  for _ = 1 to rounds do
    step t
  done

let run_until t ?(max_rounds = 100_000) predicate =
  let rec go steps =
    if predicate () then true
    else if steps >= max_rounds then false
    else begin
      step t;
      go (steps + 1)
    end
  in
  go 0

let messages_sent t = t.messages_sent
let bytes_sent t = t.bytes_sent
let broadcasts_sent t = t.broadcasts_sent

let alarm t ~agent ~reason =
  t.alarms <- { agent; at_round = t.round; reason } :: t.alarms

let alarms t = List.rev t.alarms

let first_alarm t =
  match List.rev t.alarms with [] -> None | first :: _ -> Some first
