(** Recorded runs — the paper's query/response action traces.

    A {!transaction} pairs the query action (a user sending an
    operation to the server) with its response action, as in Section
    2.1. The trace of a run is what Definition 2.1's deviation relation
    is evaluated over: {!Oracle} replays it against a trusted executor
    to decide, as ground truth, whether the untrusted run deviates from
    every trusted run. *)

type transaction = {
  seq : int;  (** global issue order (one query action per round) *)
  user : int;
  op : Mtree.Vo.op;
  issued_round : int;
  completed_round : int option;  (** [None] while in flight / dropped *)
  answer : Mtree.Vo.answer option;  (** as reported by the server *)
  roots : (string * string) option;
      (** (old, new) root digests the user computed from the
          verification object — the state transition this transaction
          claims; [None] when the user did not verify *)
}

type t

val create : unit -> t

val issue : t -> user:int -> op:Mtree.Vo.op -> round:int -> int
(** Record a query action; returns the transaction's [seq] handle. *)

val complete :
  t -> seq:int -> round:int -> answer:Mtree.Vo.answer -> ?roots:string * string -> unit -> unit
(** Record the matching response action.
    @raise Invalid_argument on unknown or already-completed [seq]. *)

val transactions : t -> transaction list
(** In issue order. *)

val completed : t -> transaction list
val pending : t -> transaction list
val count : t -> int
val completed_count_for_user : t -> user:int -> int

val completed_after : t -> round:int -> user:int -> int
(** Number of transactions by [user] issued after [round] that have
    completed — the quantity bounded by k-bounded deviation
    detection. *)
