type transaction = {
  seq : int;
  user : int;
  op : Mtree.Vo.op;
  issued_round : int;
  completed_round : int option;
  answer : Mtree.Vo.answer option;
  roots : (string * string) option;
}

type t = { mutable items : transaction list (* newest first *); mutable next_seq : int }

let create () = { items = []; next_seq = 0 }

let issue t ~user ~op ~round =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.items <-
    { seq; user; op; issued_round = round; completed_round = None; answer = None; roots = None }
    :: t.items;
  seq

let complete t ~seq ~round ~answer ?roots () =
  let found = ref false in
  t.items <-
    List.map
      (fun tx ->
        if tx.seq <> seq then tx
        else begin
          if tx.completed_round <> None then
            invalid_arg "Trace.complete: transaction already completed";
          found := true;
          { tx with completed_round = Some round; answer = Some answer; roots }
        end)
      t.items;
  if not !found then invalid_arg "Trace.complete: unknown transaction"

let transactions t = List.rev t.items
let completed t = List.filter (fun tx -> tx.completed_round <> None) (transactions t)
let pending t = List.filter (fun tx -> tx.completed_round = None) (transactions t)
let count t = t.next_seq

let completed_count_for_user t ~user =
  List.length (List.filter (fun tx -> tx.user = user) (completed t))

let completed_after t ~round ~user =
  List.length
    (List.filter
       (fun tx -> tx.user = user && tx.issued_round > round)
       (completed t))
