type t = Server | User of int

let equal a b = a = b
let compare = Stdlib.compare

let to_string = function
  | Server -> "server"
  | User i -> Printf.sprintf "user-%d" i

let pp fmt t = Format.pp_print_string fmt (to_string t)
