lib/sim/trace.mli: Mtree
