lib/sim/engine.ml: Id List Printf
