lib/sim/trace.ml: List Mtree
