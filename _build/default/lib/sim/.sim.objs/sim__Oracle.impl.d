lib/sim/oracle.ml: List Mtree Trace
