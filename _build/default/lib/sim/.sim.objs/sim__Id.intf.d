lib/sim/id.mli: Format
