lib/sim/oracle.mli: Mtree Trace
