lib/sim/engine.mli: Id
