lib/sim/id.ml: Format Printf Stdlib
