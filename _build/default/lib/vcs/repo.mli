(** A complete, {e trusted} repository engine: the CVS verbs over the
    authenticated database, without any network or protocol.

    This is what a correct server runs internally, and what a user with
    local (trusted) disk access uses directly — the same data layout
    that the Trusted CVS protocols verify remotely, so a repository can
    be exported from a local [Repo.t] to an untrusted server byte for
    byte. It also serves as the reference implementation the test suite
    compares protocol sessions against.

    The structure is persistent: every operation returns a new
    repository; old values remain valid snapshots. *)

type t

val empty : ?branching:int -> unit -> t
val root_digest : t -> string
(** [M(D)]: commitment to the entire repository (files and tags). *)

val file_count : t -> int

(** {2 Files} *)

val commit :
  t -> path:string -> author:int -> round:int -> log:string -> content:string ->
  (t * int, string) result
(** Append a revision; returns the new repository and revision number.
    Fails on a reserved path ([tag!] prefix) or corrupt stored data. *)

val checkout : t -> path:string -> (string, string) result
(** Head content; [Error] if the path does not exist. *)

val checkout_at : t -> path:string -> revision:int -> (string, string) result
val history : t -> path:string -> (File_history.t, string) result
val log : t -> path:string -> ((int * int * int * string) list, string) result
val annotate : t -> path:string -> ((string * int) list, string) result
val paths : t -> string list
(** All file paths, sorted; tags excluded. *)

val remove_file : t -> path:string -> t
(** Delete a file and its whole history (CVS's attic, simplified). *)

(** {2 Tags} *)

val tag : t -> name:string -> (t * int, string) result
(** Snapshot all current head revisions under [name]; returns how many
    files are covered. *)

val tags : t -> string list
val tagged_files : t -> name:string -> ((string * int) list, string) result
val checkout_tag : t -> name:string -> path:string -> (string, string) result

(** {2 Interop with the protocol layer} *)

val database : t -> Mtree.Merkle_btree.t
(** The underlying authenticated database — hand this to
    {!Tcvs.Server.create} (as [to_alist]) to host the repository on an
    untrusted server. *)

val of_database : Mtree.Merkle_btree.t -> t
(** Adopt an existing database (e.g. rebuilt from a server dump). *)
