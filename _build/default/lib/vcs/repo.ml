module T = Mtree.Merkle_btree

type t = { db : T.t }

let empty ?branching () = { db = T.create ?branching () }
let root_digest t = T.root_digest t.db
let database t = t.db
let of_database db = { db }

let fetch_history t ~path =
  match T.find t.db path with
  | None -> Ok File_history.empty
  | Some encoded -> (
      match File_history.decode encoded with
      | Some h -> Ok h
      | None -> Error (Printf.sprintf "corrupt history for %s" path))

let existing_history t ~path =
  match T.find t.db path with
  | None -> Error (Printf.sprintf "no such file %s" path)
  | Some encoded -> (
      match File_history.decode encoded with
      | Some h -> Ok h
      | None -> Error (Printf.sprintf "corrupt history for %s" path))

let commit t ~path ~author ~round ~log ~content =
  if Tag_snapshot.is_tag_key path then
    Error (Printf.sprintf "%S is a reserved path prefix" Tag_snapshot.reserved_prefix)
  else begin
    match fetch_history t ~path with
    | Error _ as e -> e |> Result.map (fun _ -> assert false)
    | Ok history ->
        let history' = File_history.commit history ~author ~round ~log ~content in
        Ok
          ( { db = T.set t.db ~key:path ~value:(File_history.encode history') },
            File_history.head_revision history' )
  end

let checkout t ~path = Result.map File_history.head_content (existing_history t ~path)

let checkout_at t ~path ~revision =
  match existing_history t ~path with
  | Error _ as e -> e
  | Ok h -> File_history.content_at h revision

let history t ~path = existing_history t ~path
let log t ~path = Result.map File_history.log_entries (existing_history t ~path)
let annotate t ~path = Result.map File_history.annotate (existing_history t ~path)

let paths t =
  T.to_alist t.db |> List.map fst |> List.filter (fun k -> not (Tag_snapshot.is_tag_key k))

let file_count t = List.length (paths t)
let remove_file t ~path = { db = T.remove t.db path }

let tag t ~name =
  let rec snapshot acc = function
    | [] -> Ok (List.rev acc)
    | path :: rest -> (
        match existing_history t ~path with
        | Error _ as e -> e |> Result.map (fun _ -> assert false)
        | Ok h -> snapshot ((path, File_history.head_revision h) :: acc) rest)
  in
  match snapshot [] (paths t) with
  | Error e -> Error e
  | Ok entries ->
      Ok
        ( { db = T.set t.db ~key:(Tag_snapshot.key name) ~value:(Tag_snapshot.encode entries) },
          List.length entries )

let tags t =
  T.to_alist t.db
  |> List.filter_map (fun (k, _) ->
         if Tag_snapshot.is_tag_key k then
           Some
             (String.sub k
                (String.length Tag_snapshot.reserved_prefix)
                (String.length k - String.length Tag_snapshot.reserved_prefix))
         else None)

let tagged_files t ~name =
  match T.find t.db (Tag_snapshot.key name) with
  | None -> Error (Printf.sprintf "no such tag %S" name)
  | Some encoded -> (
      match Tag_snapshot.decode encoded with
      | Some entries -> Ok entries
      | None -> Error (Printf.sprintf "corrupt tag %S" name))

let checkout_tag t ~name ~path =
  match tagged_files t ~name with
  | Error _ as e -> e
  | Ok entries -> (
      match List.assoc_opt path entries with
      | None -> Error (Printf.sprintf "%s is not covered by tag %S" path name)
      | Some revision -> checkout_at t ~path ~revision)
