(** Revision history of a single file, stored as a forward delta chain
    (revision 1 is a delta against the empty file), the way RCS/CVS
    `,v` archives store revisions.

    In the Trusted CVS mapping, the {e value} stored in the
    authenticated database under a file's path is the encoded history
    of that file. One CVS command therefore touches exactly one
    database item, matching the paper's model where `checkout` is a
    read request and `commit` an update request on a database of data
    items (Section 2.1, "CVS Operations"). *)

type revision = {
  number : int;  (** 1-based; revision [n] is built on revision [n-1] *)
  author : int;  (** user id of the committer *)
  round : int;  (** simulator round at which the commit happened *)
  log : string;  (** commit message *)
  patch : Vdiff.Patch.t;  (** delta from revision [number - 1] *)
}

type t

val empty : t
val head_revision : t -> int
(** 0 for an empty history. *)

val revisions : t -> revision list
(** Oldest first. *)

val head_content : t -> string
(** Content at the head revision; [""] for an empty history. *)

val content_at : t -> int -> (string, string) result
(** [content_at h n] replays deltas 1..n. [content_at h 0 = Ok ""].
    [Error _] if [n] is out of range or the chain is corrupt. *)

val commit : t -> author:int -> round:int -> log:string -> content:string -> t
(** Append a revision whose content is [content]. *)

val log_entries : t -> (int * int * int * string) list
(** (revision, author, round, message), newest first — `cvs log`. *)

val diff_between : t -> int -> int -> (Vdiff.Patch.t, string) result
(** Patch transforming revision [a]'s content into revision [b]'s. *)

val annotate : t -> (string * int) list
(** For each line of the head content, the revision that introduced it
    (`cvs annotate`). *)

val encode : t -> string
val decode : string -> t option
val digest : t -> string
(** SHA-256 of the canonical encoding. *)
