(** Tag snapshots: the stored value of a `cvs tag` — which revision of
    each file the tag covers. Shared by the trusted {!Repo} engine and
    the protocol-level CVS sessions so both sides agree on the layout
    byte for byte. *)

val reserved_prefix : string
(** Key prefix under which tags live in the database ([tag!]); file
    paths must not start with it. *)

val key : string -> string
(** Database key for a tag name. *)

val is_tag_key : string -> bool

val encode : (string * int) list -> string
(** Serialise (path, revision) pairs. *)

val decode : string -> (string * int) list option
