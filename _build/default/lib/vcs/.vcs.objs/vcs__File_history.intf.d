lib/vcs/file_history.mli: Vdiff
