lib/vcs/file_history.ml: Crypto Fun List Printf Vdiff Wire
