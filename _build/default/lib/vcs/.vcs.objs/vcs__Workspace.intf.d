lib/vcs/workspace.mli: File_history
