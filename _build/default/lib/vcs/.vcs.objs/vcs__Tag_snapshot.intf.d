lib/vcs/tag_snapshot.mli:
