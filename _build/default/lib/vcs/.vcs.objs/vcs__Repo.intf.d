lib/vcs/repo.mli: File_history Mtree
