lib/vcs/tag_snapshot.ml: String Wire
