lib/vcs/workspace.ml: File_history List Map Option String Vdiff
