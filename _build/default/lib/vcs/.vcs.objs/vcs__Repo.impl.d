lib/vcs/repo.ml: File_history List Mtree Printf Result String Tag_snapshot
