type revision = {
  number : int;
  author : int;
  round : int;
  log : string;
  patch : Vdiff.Patch.t;
}

(* Revisions oldest-first; the cached head content makes commit and
   checkout O(1) in chain length while keeping the full chain for
   [content_at] / [annotate]. The cache is re-derivable, and [decode]
   rebuilds it rather than trusting the wire. *)
type t = { revisions : revision list; head : string }

let empty = { revisions = []; head = "" }
let head_revision t = List.length t.revisions
let revisions t = t.revisions
let head_content t = t.head

let content_at t n =
  if n < 0 || n > head_revision t then
    Error (Printf.sprintf "revision %d out of range (head is %d)" n (head_revision t))
  else
    List.fold_left
      (fun acc r ->
        match acc with
        | Error _ as e -> e
        | Ok content ->
            if r.number > n then Ok content
            else begin
              match Vdiff.Patch.apply r.patch content with
              | Ok _ as ok -> ok
              | Error e ->
                  Error (Printf.sprintf "corrupt chain at revision %d: %s" r.number e)
            end)
      (Ok "") t.revisions

let commit t ~author ~round ~log ~content =
  let patch = Vdiff.Patch.make ~old_:t.head ~new_:content in
  let rev = { number = head_revision t + 1; author; round; log; patch } in
  { revisions = t.revisions @ [ rev ]; head = content }

let log_entries t =
  List.rev_map (fun r -> (r.number, r.author, r.round, r.log)) t.revisions

let diff_between t a b =
  match (content_at t a, content_at t b) with
  | Ok ca, Ok cb -> Ok (Vdiff.Patch.make ~old_:ca ~new_:cb)
  | Error e, _ | _, Error e -> Error e

let annotate t =
  (* Replay the chain, tracking the introducing revision per line. *)
  let annotated = ref [] in
  List.iter
    (fun r ->
      let lines = ref !annotated and out = ref [] in
      let take n =
        let rec go n acc =
          if n = 0 then List.rev acc
          else
            match !lines with
            | [] -> List.rev acc
            | l :: tl ->
                lines := tl;
                go (n - 1) (l :: acc)
        in
        go n []
      in
      List.iter
        (fun op ->
          match op with
          | Vdiff.Patch.Copy n -> out := !out @ take n
          | Vdiff.Patch.Delete ls -> ignore (take (List.length ls))
          | Vdiff.Patch.Insert ls -> out := !out @ List.map (fun l -> (l, r.number)) ls)
        (Vdiff.Patch.ops r.patch);
      annotated := !out)
    t.revisions;
  !annotated

let encode t =
  let w = Wire.W.create () in
  Wire.W.list w
    (fun r ->
      Wire.W.u32 w r.number;
      Wire.W.u32 w r.author;
      Wire.W.u32 w r.round;
      Wire.W.str w r.log;
      Wire.W.str w (Vdiff.Patch.encode r.patch))
    t.revisions;
  Wire.W.contents w

let decode s =
  let decoded =
    Wire.decode s (fun r ->
        Wire.R.list r (fun r ->
            let number = Wire.R.u32 r in
            let author = Wire.R.u32 r in
            let round = Wire.R.u32 r in
            let log = Wire.R.str r in
            match Vdiff.Patch.decode (Wire.R.str r) with
            | Some patch -> { number; author; round; log; patch }
            | None -> failwith "bad patch"))
  in
  match decoded with
  | None -> None
  | Some revisions ->
      let numbered = List.mapi (fun i r -> r.number = i + 1) revisions in
      if not (List.for_all Fun.id numbered) then None
      else begin
        let candidate = { revisions; head = "" } in
        match content_at candidate (List.length revisions) with
        | Ok head -> Some { revisions; head }
        | Error _ -> None
      end

let digest t = Crypto.Sha256.digest (encode t)
