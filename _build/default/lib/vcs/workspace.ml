module Path_map = Map.Make (String)

type file_state = {
  base_revision : int;
  base_content : string;
  local_content : string;
}

type t = file_state Path_map.t

let empty = Path_map.empty
let files t = Path_map.bindings t

let checkout t ~path history =
  let content = File_history.head_content history in
  Path_map.add path
    {
      base_revision = File_history.head_revision history;
      base_content = content;
      local_content = content;
    }
    t

let edit t ~path ~content =
  match Path_map.find_opt path t with
  | None -> raise Not_found
  | Some st -> Path_map.add path { st with local_content = content } t

let find t path = Path_map.find_opt path t

type status = Unchanged | Modified

let status t =
  Path_map.bindings t
  |> List.map (fun (path, st) ->
         (path, if st.local_content = st.base_content then Unchanged else Modified))

let modified_paths t =
  status t |> List.filter_map (fun (p, s) -> if s = Modified then Some p else None)

let is_up_to_date t ~path history =
  match Path_map.find_opt path t with
  | None -> false
  | Some st -> st.base_revision = File_history.head_revision history

type update_result =
  | Updated of t
  | Conflict of { path : string; reason : string }

let update t ~path history =
  match Path_map.find_opt path t with
  | None -> Updated (checkout t ~path history)
  | Some st ->
      let head = File_history.head_revision history in
      if head = st.base_revision then Updated t
      else begin
        match File_history.content_at history st.base_revision with
        | Error reason -> Conflict { path; reason }
        | Ok base_now ->
            if base_now <> st.base_content then
              Conflict { path; reason = "base revision content diverged" }
            else begin
              let upstream =
                Vdiff.Patch.make ~old_:st.base_content ~new_:(File_history.head_content history)
              in
              if st.local_content = st.base_content then
                Updated (checkout t ~path history)
              else begin
                match Vdiff.Patch.apply upstream st.local_content with
                | Ok merged ->
                    Updated
                      (Path_map.add path
                         {
                           base_revision = head;
                           base_content = File_history.head_content history;
                           local_content = merged;
                         }
                         t)
                | Error reason ->
                    Conflict
                      { path; reason = "merge does not apply cleanly: " ^ reason }
              end
            end
      end

let commit_content t ~path =
  Option.map (fun st -> st.local_content) (Path_map.find_opt path t)
