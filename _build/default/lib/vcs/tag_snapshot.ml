let reserved_prefix = "tag!"
let key name = reserved_prefix ^ name
let is_tag_key k = String.starts_with ~prefix:reserved_prefix k

let encode entries =
  let w = Wire.W.create () in
  Wire.W.list w
    (fun (path, rev) ->
      Wire.W.str w path;
      Wire.W.u32 w rev)
    entries;
  Wire.W.contents w

let decode encoded =
  Wire.decode encoded (fun r ->
      Wire.R.list r (fun r ->
          let path = Wire.R.str r in
          let rev = Wire.R.u32 r in
          (path, rev)))
