(** A user's local checkout — the sandbox directory a CVS user edits.

    A workspace remembers, per file, the revision and content it was
    checked out at plus any local edits. It can report status, produce
    commit payloads, and bring local files up to date against a newer
    history with the usual CVS merge-on-update behaviour (a merge that
    cannot apply cleanly is reported as a conflict instead of silently
    corrupting the file). *)

type file_state = {
  base_revision : int;  (** revision the checkout was taken at *)
  base_content : string;
  local_content : string;  (** current (possibly edited) content *)
}

type t

val empty : t
val files : t -> (string * file_state) list
(** Sorted by path. *)

val checkout : t -> path:string -> File_history.t -> t
(** Record a fresh checkout of the head revision. Discards local edits
    to that path. *)

val edit : t -> path:string -> content:string -> t
(** Overwrite the local content of a checked-out file.
    @raise Not_found if the path was never checked out. *)

val find : t -> string -> file_state option

type status = Unchanged | Modified

val status : t -> (string * status) list
val modified_paths : t -> string list

val is_up_to_date : t -> path:string -> File_history.t -> bool
(** True when the workspace's base revision equals the history head —
    the precondition CVS imposes for committing. *)

type update_result =
  | Updated of t  (** local edits merged onto the new head *)
  | Conflict of { path : string; reason : string }

val update : t -> path:string -> File_history.t -> update_result
(** CVS `update`: rebase local edits onto the history head by applying
    the upstream delta to the local file; delta context that no longer
    matches means a conflict. *)

val commit_content : t -> path:string -> string option
(** Local content to commit for a path ([None] if not checked out). *)
